//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] names everything one simulated world varies: the
//! graph, the partitioner, the channel noise, how clients tune in, the
//! channel rate and device heap, the query workload mix, and the queue
//! policy driving every client-side Dijkstra. Specs are plain data — the
//! engine ([`crate::engine`]) turns a spec plus its seed into a fully
//! deterministic run, so two runs of the same spec are byte-identical
//! regardless of thread count.

use spair_broadcast::{ChannelRate, DeviceProfile, FaultPlan, LossModel};
use spair_roadnet::generators::small_grid;
use spair_roadnet::{NetworkPreset, QueuePolicy, RoadNetwork};

/// Which road network a scenario simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphSpec {
    /// A `width × height` grid-topology network (fast; used by the
    /// conformance tests).
    Grid {
        /// Grid columns.
        width: usize,
        /// Grid rows.
        height: usize,
    },
    /// One of the paper's five evaluation networks, scaled by `scale`
    /// (realistic degree/weight distributions).
    Preset {
        /// The evaluation network.
        preset: NetworkPreset,
        /// Scale factor in `(0, 1]`.
        scale: f64,
    },
    /// A preset's topology class generated at an explicit node count —
    /// including counts beyond the paper's Table 2 sizes. The load
    /// harness's paper-scale "germany-class" networks (~100k+ nodes) are
    /// expressed through this variant.
    PresetNodes {
        /// The topology class (edge/node ratio source).
        preset: NetworkPreset,
        /// Exact node count to generate.
        nodes: usize,
    },
}

impl GraphSpec {
    /// Generates the network for `seed`.
    pub fn build(&self, seed: u64) -> RoadNetwork {
        match *self {
            GraphSpec::Grid { width, height } => small_grid(width, height, seed),
            GraphSpec::Preset { preset, scale } => preset.scaled_config(seed, scale).generate(),
            GraphSpec::PresetNodes { preset, nodes } => {
                preset.config_for_nodes(seed, nodes).generate()
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::Grid { width, height } => format!("grid{width}x{height}"),
            GraphSpec::Preset { preset, scale } => {
                format!("{}@{scale:.2}", preset.name().replace(' ', ""))
            }
            GraphSpec::PresetNodes { preset, nodes } => {
                format!("{}@{nodes}n", preset.name().replace(' ', ""))
            }
        }
    }
}

/// How the network is split into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Kd-tree median splits (the paper's partitioner; balances node
    /// counts per region).
    KdMedian,
    /// Uniform midpoint splits — a regular spatial grid expressed through
    /// the same broadcastable splitting values (§4.1's "regular grid"
    /// alternative).
    UniformGrid,
}

impl PartitionerKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionerKind::KdMedian => "kd",
            PartitionerKind::UniformGrid => "grid",
        }
    }
}

/// Channel noise, as reproducible spec data (the concrete [`LossModel`]
/// is instantiated per query from a derived seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossSpec {
    /// Every packet arrives.
    Lossless,
    /// I.i.d. loss at `rate`.
    Bernoulli {
        /// Loss probability in `[0, 1)`.
        rate: f64,
    },
    /// Gilbert–Elliott bursty loss at stationary `rate` with mean burst
    /// length `burst` packets.
    Bursty {
        /// Stationary loss probability in `[0, 1)`.
        rate: f64,
        /// Mean burst length in packets (`>= 1`).
        burst: f64,
    },
}

impl LossSpec {
    /// Instantiates the loss model for one channel session.
    pub fn model(&self, seed: u64) -> LossModel {
        match *self {
            LossSpec::Lossless => LossModel::Lossless,
            LossSpec::Bernoulli { rate } => LossModel::bernoulli(rate, seed),
            LossSpec::Bursty { rate, burst } => LossModel::bursty(rate, burst, seed),
        }
    }

    /// Whether packets can be lost at all.
    pub fn is_lossy(&self) -> bool {
        !matches!(self, LossSpec::Lossless)
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            LossSpec::Lossless => "lossless".to_string(),
            LossSpec::Bernoulli { rate } => format!("bernoulli{:.1}%", rate * 100.0),
            LossSpec::Bursty { rate, burst } => {
                format!("bursty{:.1}%x{burst:.0}", rate * 100.0)
            }
        }
    }
}

/// Seeded fault injection beyond plain loss, as reproducible spec data
/// (the concrete [`FaultPlan`] is instantiated per session from a derived
/// seed and the serving method's cycle length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// No faults: channels behave byte-for-byte as without a fault layer.
    None,
    /// Per-packet bit corruption at `rate`, caught by the frame CRC and
    /// surfaced as a detectable (loss-like) event.
    Corruption {
        /// Corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// Link-layer stutter: the previous slot's frame replaces the
    /// scheduled one at `rate` — a silently-corrupting fault.
    Duplication {
        /// Duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// Server restarts (cycle truncation + version bump) roughly every
    /// `mean_cycles` cycles, with `stale_rate` of post-restart slots
    /// leaking frames from the pre-restart schedule.
    Restarts {
        /// Mean cycles between restarts (`> 0`).
        mean_cycles: f64,
        /// Stale-frame leak probability in `[0, 1]`.
        stale_rate: f64,
    },
    /// Correlated window loss: aligned `window`-packet spans of the
    /// absolute clock are wiped at `rate` for every client sharing the
    /// session seed (flash-crowd fading).
    CorrelatedLoss {
        /// Window wipe probability in `[0, 1)`.
        rate: f64,
        /// Window length in packets (`>= 1`).
        window: u64,
    },
    /// Every fault class at once — the chaos cell.
    Chaos {
        /// Per-packet rate shared by corruption / duplication / stale
        /// draws and the correlated windows.
        rate: f64,
        /// Mean cycles between restarts (`> 0`).
        mean_cycles: f64,
    },
}

impl FaultSpec {
    /// Instantiates the fault plan for one channel session over a cycle
    /// of `cycle_len` packets.
    pub fn plan(&self, seed: u64, cycle_len: usize) -> FaultPlan {
        let mean_packets = |cycles: f64| (cycles * cycle_len.max(1) as f64).max(2.0);
        match *self {
            FaultSpec::None => FaultPlan::none(),
            FaultSpec::Corruption { rate } => FaultPlan::corruption(rate, seed),
            FaultSpec::Duplication { rate } => FaultPlan::duplication(rate, seed),
            FaultSpec::Restarts {
                mean_cycles,
                stale_rate,
            } => FaultPlan::restarts(mean_packets(mean_cycles), stale_rate, seed),
            FaultSpec::CorrelatedLoss { rate, window } => {
                FaultPlan::correlated_loss(rate, window, seed)
            }
            FaultSpec::Chaos { rate, mean_cycles } => FaultPlan {
                seed,
                corrupt_rate: rate,
                duplicate_rate: rate,
                stale_rate: rate,
                restart_mean_packets: mean_packets(mean_cycles),
                correlated_loss: Some((rate, 8)),
            },
        }
    }

    /// Whether any fault can occur at all.
    pub fn is_faulty(&self) -> bool {
        !matches!(self, FaultSpec::None)
    }

    /// Whether the spec can *silently* misdeliver content (restarts,
    /// duplicates, stale frames) — the classes that force the supervisor
    /// to discard and retry rather than trust §6.2 recovery.
    pub fn is_silently_corrupting(&self) -> bool {
        matches!(
            self,
            FaultSpec::Duplication { .. } | FaultSpec::Restarts { .. } | FaultSpec::Chaos { .. }
        )
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::None => "nofault".to_string(),
            FaultSpec::Corruption { rate } => format!("corrupt{:.1}%", rate * 100.0),
            FaultSpec::Duplication { rate } => format!("dup{:.1}%", rate * 100.0),
            FaultSpec::Restarts {
                mean_cycles,
                stale_rate,
            } => format!("restart{mean_cycles:.1}c+stale{:.1}%", stale_rate * 100.0),
            FaultSpec::CorrelatedLoss { rate, window } => {
                format!("corrloss{:.1}%x{window}", rate * 100.0)
            }
            FaultSpec::Chaos { rate, mean_cycles } => {
                format!("chaos{:.1}%@{mean_cycles:.1}c", rate * 100.0)
            }
        }
    }
}

/// Where in the cycle clients tune in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneInSpec {
    /// Always at cycle offset 0 (worst-case-free baseline).
    Start,
    /// Uniformly random offset per query (the paper's §7 protocol).
    Uniform,
}

/// How many queries of each kind a scenario poses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Node-to-node shortest-path queries.
    pub point_to_point: usize,
    /// Arbitrary on-edge position queries (§5 closing remark), answered
    /// by endpoint decomposition over the same air methods.
    pub on_edge: usize,
    /// kNN queries over the scenario's POI set (§8 extension).
    pub knn: usize,
    /// `k` for the kNN queries.
    pub k: usize,
}

impl WorkloadMix {
    /// A point-to-point-only mix.
    pub fn p2p(n: usize) -> Self {
        Self {
            point_to_point: n,
            on_edge: 0,
            knn: 0,
            k: 0,
        }
    }
}

/// One simulated world: everything a conformance run varies.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Unique scenario name (the matrix row key).
    pub name: String,
    /// Road network.
    pub graph: GraphSpec,
    /// Partitioner for EB/NR/kNN (and ArcFlag, which reuses it).
    pub partitioner: PartitionerKind,
    /// Region count (power of two, >= 2).
    pub regions: usize,
    /// Channel noise.
    pub loss: LossSpec,
    /// Fault injection beyond loss (corruption, restarts, duplicates,
    /// stale frames, correlated windows). [`FaultSpec::None`] keeps every
    /// channel byte-identical to the pre-fault engine.
    pub fault: FaultSpec,
    /// Tune-in offset distribution.
    pub tune_in: TuneInSpec,
    /// Channel bit rate (drives latency seconds and radio energy).
    pub rate: ChannelRate,
    /// Device heap budget in bytes (the per-cell `within_memory_budget`
    /// verdict).
    pub heap_budget_bytes: usize,
    /// Query workload mix.
    pub workload: WorkloadMix,
    /// Queue policy handed to every client-side search.
    pub queue: QueuePolicy,
    /// Master seed: graph generation, workload draws, tune-in offsets and
    /// loss-model streams all derive from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A small, fast scenario with sensible defaults — the starting point
    /// the tests and the default matrix specialize.
    pub fn small(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            graph: GraphSpec::Grid {
                width: 12,
                height: 12,
            },
            partitioner: PartitionerKind::KdMedian,
            regions: 8,
            loss: LossSpec::Lossless,
            fault: FaultSpec::None,
            tune_in: TuneInSpec::Uniform,
            rate: ChannelRate::MOVING_3G,
            heap_budget_bytes: DeviceProfile::J2ME_PHONE.heap_bytes,
            workload: WorkloadMix {
                point_to_point: 8,
                on_edge: 3,
                knn: 3,
                k: 3,
            },
            queue: QueuePolicy::Auto,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_spec_builds_deterministically() {
        let spec = GraphSpec::Grid {
            width: 6,
            height: 7,
        };
        let a = spec.build(3);
        let b = spec.build(3);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_nodes(), 42);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = vec![
            LossSpec::Lossless.label(),
            LossSpec::Bernoulli { rate: 0.05 }.label(),
            LossSpec::Bursty {
                rate: 0.05,
                burst: 8.0,
            }
            .label(),
        ];
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }
}
