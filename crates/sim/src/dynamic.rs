//! Dynamic-world certification: versioned delta-broadcast of live
//! weight updates, differentially verified per version.
//!
//! A [`DynamicSpec`] pairs a base [`ScenarioSpec`] with a seeded
//! [`TrafficSpec`] and a version count. The context expands every
//! version's network through the pure traffic model ([`network_at`]),
//! builds the server-side patch cycle for each version step
//! ([`build_patch_cycle`] over [`version_deltas`]), and poses the same
//! point-to-point queries against **every** version, each with a fresh
//! serial-Dijkstra oracle on that version's network.
//!
//! Per method, the runner models a commuter who keeps their device:
//!
//! * **Version 0** — a plain full session on the method's own cycle
//!   (byte-identical to the static engine's world).
//! * **Incremental methods** (descriptor
//!   [`patches_incrementally`](spair_methods::MethodDescriptor::patches_incrementally)):
//!   the client exports its received arena, and each subsequent version
//!   is served by one **patch session** — directory plus exactly the
//!   held regions' delta segments — followed by a *certified* local
//!   search ([`ReceivedGraph::shortest_path_checked`]). Any typed patch
//!   failure ([`PatchError`]) or an uncertified search falls back to a
//!   full re-tune under the PR 6 recovery supervisor, and the fallback
//!   cause is classified per cell.
//! * **Rebuild methods** (index-transforming: LD, AF, SPQ, HiTi): every
//!   version is a fresh full session on that version's rebuilt program.
//!
//! Cells fan out with the same chunk-ordered map-reduce as the
//! conformance and chaos matrices, so a [`DynamicMatrix`] — and its
//! digest — is bit-identical for every thread count.
//!
//! [`ReceivedGraph::shortest_path_checked`]: spair_core::netcodec::ReceivedGraph::shortest_path_checked

use crate::engine::{path_is_valid, session_seed, splitmix64};
use crate::faults::FAULT_BUDGET;
use crate::spec::{GraphSpec, ScenarioSpec, TuneInSpec, WorkloadMix};
use crate::traffic::{network_at, version_deltas, TrafficSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spair_broadcast::{BroadcastChannel, BroadcastCycle};
use spair_core::patch::{build_patch_cycle, receive_patch, ClientArena, PatchError};
use spair_core::{supervise, AttemptReport, BorderPrecomputation, Query, SessionOutcome};
use spair_methods::{MethodId, MethodRegistry, ProgramSet, SessionShape, Tuning, World};
use spair_partition::{KdTreePartition, Partitioning};
use spair_roadnet::{dijkstra_distance, parallel, Distance, NetworkPreset, NodeId, RoadNetwork};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One dynamic world: a base scenario, how its weights evolve, and how
/// many cycle versions to run (version 0 is the unperturbed base).
#[derive(Debug, Clone)]
pub struct DynamicSpec {
    /// The static scenario the world starts from. Only the
    /// point-to-point portion of its workload runs (dynamic certification
    /// is about re-answering the same journeys as the world changes).
    pub base: ScenarioSpec,
    /// The seeded weight-evolution model.
    pub traffic: TrafficSpec,
    /// Total versions including version 0 (`>= 2`).
    pub versions: usize,
}

/// A fully expanded dynamic world: per-version programs, patch cycles,
/// and per-version oracle answers for every query.
pub struct DynamicContext {
    /// The spec this context expands.
    pub spec: DynamicSpec,
    /// The queries every version re-answers, with `oracles[v]` the serial
    /// Dijkstra distance on version `v`'s network.
    pub queries: Vec<(Query, Vec<Distance>)>,
    /// Per-version lazy program sets (`worlds[v]` serves version `v`).
    worlds: Vec<ProgramSet>,
    /// `patch_cycles[v - 1]` upgrades version `v - 1` to `v`.
    patch_cycles: Vec<BroadcastCycle>,
}

impl DynamicContext {
    /// Expands `spec`: every version's network, patch cycle and oracle
    /// column. Methods build their per-version programs lazily on first
    /// use, so rebuild-heavy servers are only constructed where a cell
    /// actually runs.
    pub fn build(spec: &DynamicSpec) -> Self {
        assert!(spec.versions >= 2, "a dynamic world needs >= 2 versions");
        let s = &spec.base;
        let g0 = s.graph.build(s.seed);
        let part = match s.partitioner {
            crate::spec::PartitionerKind::KdMedian => KdTreePartition::build(&g0, s.regions),
            crate::spec::PartitionerKind::UniformGrid => {
                KdTreePartition::build_uniform(&g0, s.regions)
            }
        };
        let part = Arc::new(part);

        // Per-version worlds. Coordinates never change, so the partition
        // is shared; border precomputation re-runs per version (it reads
        // weights).
        let mut worlds = Vec::with_capacity(spec.versions);
        let mut networks: Vec<Arc<RoadNetwork>> = Vec::with_capacity(spec.versions);
        for v in 0..spec.versions {
            let gv = if v == 0 {
                g0.clone()
            } else {
                network_at(&g0, &spec.traffic, s.seed, v as u32)
            };
            let pre = BorderPrecomputation::run(&gv, part.as_ref());
            let world = World {
                g: Arc::new(gv),
                part: part.clone(),
                pre: Arc::new(pre),
                pois: Arc::new(Vec::new()),
                tuning: Tuning::default(),
            };
            networks.push(world.g.clone());
            worlds.push(ProgramSet::new(world));
        }

        let patch_cycles: Vec<BroadcastCycle> = (1..spec.versions)
            .map(|v| {
                let deltas = version_deltas(&g0, &part, &spec.traffic, s.seed, v as u32);
                build_patch_cycle(v as u32, v as u32 - 1, &deltas)
            })
            .collect();

        // Commuter journeys: reachable same-region pairs — the local-query
        // regime the paper's anchored methods target, and the one where a
        // patched partial arena can certify its own exactness (the search
        // ball stays inside the materialized regions). Oracles are fresh
        // per version; reachability is version-invariant (topology never
        // changes).
        let n = g0.num_nodes();
        // A node is interior when all its neighbors share its region —
        // homes and offices, not border crossings. Interior endpoints are
        // preferred (their search balls mostly stay inside the regions a
        // patched arena holds); thin kd regions without interior mates
        // fall back to plain same-region pairs.
        let interior = |v: NodeId| {
            g0.out_edges(v)
                .all(|(u, _)| part.region_of(u) == part.region_of(v))
        };
        // Hop counts from `src` out to `cap` hops — commutes are a few
        // blocks, not a traversal of the city.
        let hops_from = |src: NodeId, cap: usize| {
            let mut dist = vec![usize::MAX; n];
            let mut frontier = vec![src];
            dist[src as usize] = 0;
            for h in 1..=cap {
                let mut next = Vec::new();
                for &v in &frontier {
                    for (u, _) in g0.out_edges(v) {
                        if dist[u as usize] == usize::MAX {
                            dist[u as usize] = h;
                            next.push(u);
                        }
                    }
                }
                frontier = next;
            }
            dist
        };
        let mut rng = StdRng::seed_from_u64(splitmix64(s.seed ^ 0xD9_4A11C));
        let mut queries = Vec::with_capacity(s.workload.point_to_point);
        for _ in 0..s.workload.point_to_point {
            let mut found = None;
            for round in 0..256 {
                let src = rng.gen_range(0..n) as NodeId;
                let region = part.region_of(src);
                // Prefer short interior-to-interior journeys; relax both
                // constraints when half the draw budget is gone (thin kd
                // regions may simply lack such pairs).
                let strict = round < 128;
                if strict && !interior(src) {
                    continue;
                }
                let hops = if strict {
                    hops_from(src, 3)
                } else {
                    Vec::new()
                };
                let mates: Vec<NodeId> = g0
                    .node_ids()
                    .filter(|&v| {
                        v != src
                            && part.region_of(v) == region
                            && (!strict || (interior(v) && hops[v as usize] != usize::MAX))
                    })
                    .collect();
                if mates.is_empty() {
                    continue;
                }
                let dst = mates[rng.gen_range(0..mates.len())];
                if dijkstra_distance(&g0, src, dst).is_some() {
                    found = Some((src, dst));
                    break;
                }
            }
            let (src, dst) = found.expect("no reachable same-region pair in 256 draws");
            let oracles: Vec<Distance> = networks
                .iter()
                .map(|gv| dijkstra_distance(gv, src, dst).expect("topology is version-invariant"))
                .collect();
            queries.push((Query::for_nodes(&g0, src, dst), oracles));
        }

        Self {
            spec: spec.clone(),
            queries,
            worlds,
            patch_cycles,
        }
    }

    /// Version `v`'s network.
    pub fn g(&self, v: usize) -> &RoadNetwork {
        &self.worlds[v].world().g
    }

    /// The patch cycle upgrading `v - 1` to `v`.
    pub fn patch_cycle(&self, v: usize) -> &BroadcastCycle {
        &self.patch_cycles[v - 1]
    }

    /// Version `v`'s broadcast cycle for `method`, building the program
    /// on first use. Dynamic methods all broadcast their own cycle.
    fn cycle(&self, v: usize, method: MethodId) -> &BroadcastCycle {
        self.worlds[v]
            .ensure(method)
            .cycle()
            .expect("dynamic methods broadcast a cycle")
    }

    /// A fresh client bound to version `v`'s program.
    fn client(&self, v: usize, method: MethodId) -> Box<dyn spair_core::query::AirClient> {
        self.worlds[v]
            .ensure(method)
            .make_client(self.spec.base.queue)
            .expect("dynamic methods are air clients")
    }
}

/// The methods a dynamic world exercises: air clients with a cycle of
/// their own (the §6.1 channel-less runner and the kNN client have no
/// journey to re-answer over patches).
pub fn dynamic_methods() -> Vec<MethodId> {
    MethodRegistry::standard()
        .all()
        .into_iter()
        .filter(|m| {
            let d = m.descriptor();
            d.air_client && d.own_channel && !d.knn
        })
        .collect()
}

/// Aggregated result of one (scenario × method) dynamic cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicCellReport {
    /// Scenario name (matrix row).
    pub scenario: String,
    /// Traffic-model label.
    pub traffic: String,
    /// Method name (matrix column).
    pub method: &'static str,
    /// Whether the method patched in place (vs rebuilding per version).
    pub patches_incrementally: bool,
    /// Versions run (including version 0).
    pub versions: usize,
    /// Queries posed per version.
    pub queries: usize,
    /// (query × version) answers produced and oracle-checked.
    pub answered: usize,
    /// Answers contradicting that version's oracle (distance or path).
    /// The gate requires 0.
    pub mismatches: usize,
    /// Supervised sessions that gave up typed.
    pub typed_failures: usize,
    /// Patch sessions that applied cleanly and certified their search.
    pub patch_sessions: usize,
    /// Fallback full re-tunes (typed patch failure or uncertified
    /// search), including chain restarts after a failed session.
    pub fallback_retunes: usize,
    /// Why fallbacks happened (`class → count`), sorted by class.
    pub fallback_classes: Vec<(String, usize)>,
    /// Packets received across every version-0 full session.
    pub initial_tune_packets: u64,
    /// Packets received across every patch session.
    pub patch_packets: u64,
    /// Packets received across every re-tune (rebuild sessions and
    /// supervised fallbacks).
    pub retune_packets: u64,
    /// The method's version-0 cycle length.
    pub cycle_packets: usize,
    /// Total patch-cycle packets across all version steps (scenario
    /// property, repeated per cell for self-contained rows).
    pub patch_cycle_packets: usize,
    /// `(patch_packets + retune_packets) / (queries × (versions - 1))` —
    /// the headline: what staying current costs per version, per client.
    pub mean_update_packets_per_version: f64,
}

impl DynamicCellReport {
    /// The per-cell certificate: every produced answer matched its
    /// version's oracle.
    pub fn exact(&self) -> bool {
        self.mismatches == 0
    }

    fn json_fields(&self) -> String {
        let classes: Vec<String> = self
            .fallback_classes
            .iter()
            .map(|(c, n)| format!("\"{c}\": {n}"))
            .collect();
        format!(
            "\"scenario\": \"{}\", \"traffic\": \"{}\", \"method\": \"{}\", \
             \"patches_incrementally\": {}, \"versions\": {}, \"queries\": {}, \
             \"answered\": {}, \"mismatches\": {}, \"typed_failures\": {}, \
             \"patch_sessions\": {}, \"fallback_retunes\": {}, \
             \"fallback_classes\": {{{}}}, \"initial_tune_packets\": {}, \
             \"patch_packets\": {}, \"retune_packets\": {}, \"cycle_packets\": {}, \
             \"patch_cycle_packets\": {}, \"mean_update_packets_per_version\": {:.3}, \
             \"exact\": {}",
            self.scenario,
            self.traffic,
            self.method,
            self.patches_incrementally,
            self.versions,
            self.queries,
            self.answered,
            self.mismatches,
            self.typed_failures,
            self.patch_sessions,
            self.fallback_retunes,
            classes.join(", "),
            self.initial_tune_packets,
            self.patch_packets,
            self.retune_packets,
            self.cycle_packets,
            self.patch_cycle_packets,
            self.mean_update_packets_per_version,
            self.exact(),
        )
    }
}

/// The full dynamic matrix of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicMatrix {
    /// Every (scenario × method) cell, in scenario-major order.
    pub cells: Vec<DynamicCellReport>,
}

impl DynamicMatrix {
    /// Whether every cell certifies — the dynamic-conformance gate.
    pub fn all_exact(&self) -> bool {
        self.cells.iter().all(DynamicCellReport::exact)
    }

    /// Total oracle contradictions across the matrix.
    pub fn total_mismatches(&self) -> usize {
        self.cells.iter().map(|c| c.mismatches).sum()
    }

    /// The headline claim of the dynamic axis: in every scenario, every
    /// anchored incremental method (NR, EB) stays current strictly
    /// cheaper per version (`mean_update_packets_per_version`) than
    /// every whole-cycle method — partial tuning pays off exactly where
    /// the paper says it should.
    pub fn partial_tuning_advantage(&self) -> bool {
        let registry = MethodRegistry::standard();
        let mut anchored_max: BTreeMap<&str, f64> = BTreeMap::new();
        let mut whole_min: BTreeMap<&str, f64> = BTreeMap::new();
        for c in &self.cells {
            let d = registry
                .get(c.method)
                .expect("cell method is registered")
                .descriptor();
            let m = c.mean_update_packets_per_version;
            match d.shape {
                Some(SessionShape::Anchored) if d.patches_incrementally => {
                    let e = anchored_max.entry(c.scenario.as_str()).or_insert(m);
                    *e = e.max(m);
                }
                Some(SessionShape::WholeCycle) => {
                    let e = whole_min.entry(c.scenario.as_str()).or_insert(m);
                    *e = e.min(m);
                }
                _ => {}
            }
        }
        !anchored_max.is_empty()
            && anchored_max.iter().all(|(scenario, anchored)| {
                whole_min.get(scenario).is_none_or(|whole| anchored < whole)
            })
    }

    /// FNV-1a digest over the (fully deterministic) serialized cells.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serializes the matrix. Every field is a pure function of the
    /// scenario seeds, so the output is byte-for-byte reproducible.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&c.json_fields());
            out.push_str(" }");
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// A fixed-width text table (one row per cell) for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<18} {:<13} {:>5} {:>4} {:>5} {:>6} {:>6} {:>8} {:>8} {:>10} {:>5}\n",
            "Scenario",
            "Method",
            "Patch",
            "Ans",
            "Wrong",
            "PatchS",
            "Fallbk",
            "PatchPk",
            "RetunePk",
            "MeanUpd/v",
            "Exact"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<18} {:<13} {:>5} {:>4} {:>5} {:>6} {:>6} {:>8} {:>8} {:>10.1} {:>5}\n",
                c.scenario,
                c.method,
                if c.patches_incrementally { "yes" } else { "no" },
                c.answered,
                c.mismatches,
                c.patch_sessions,
                c.fallback_retunes,
                c.patch_packets,
                c.retune_packets,
                c.mean_update_packets_per_version,
                if c.exact() { "yes" } else { "NO" },
            ));
        }
        out
    }
}

/// Per-cell accumulation state.
struct DynAcc {
    answered: usize,
    mismatches: usize,
    typed_failures: usize,
    patch_sessions: usize,
    fallback_retunes: usize,
    fallback_classes: BTreeMap<&'static str, usize>,
    initial_tune_packets: u64,
    patch_packets: u64,
    retune_packets: u64,
}

impl DynAcc {
    fn new() -> Self {
        Self {
            answered: 0,
            mismatches: 0,
            typed_failures: 0,
            patch_sessions: 0,
            fallback_retunes: 0,
            fallback_classes: BTreeMap::new(),
            initial_tune_packets: 0,
            patch_packets: 0,
            retune_packets: 0,
        }
    }

    /// Verifies one produced answer against version `v`'s oracle.
    fn check(
        &mut self,
        ctx: &DynamicContext,
        v: usize,
        query: &Query,
        oracle: Distance,
        res: Option<(Distance, Vec<NodeId>)>,
    ) {
        self.answered += 1;
        let ok = match res {
            Some((dist, path)) => {
                dist == oracle && path_is_valid(ctx.g(v), query.source, query.target, dist, &path)
            }
            // Workload pairs are reachable at every version.
            None => false,
        };
        if !ok {
            self.mismatches += 1;
        }
    }

    fn fallback(&mut self, class: &'static str) {
        self.fallback_retunes += 1;
        *self.fallback_classes.entry(class).or_insert(0) += 1;
    }

    fn into_report(self, ctx: &DynamicContext, method: MethodId) -> DynamicCellReport {
        let d = method.descriptor();
        let versions = ctx.spec.versions;
        let queries = ctx.queries.len();
        let update_sessions = (queries * (versions - 1)) as f64;
        DynamicCellReport {
            scenario: ctx.spec.base.name.clone(),
            traffic: ctx.spec.traffic.label(),
            method: method.name(),
            patches_incrementally: d.patches_incrementally,
            versions,
            queries,
            answered: self.answered,
            mismatches: self.mismatches,
            typed_failures: self.typed_failures,
            patch_sessions: self.patch_sessions,
            fallback_retunes: self.fallback_retunes,
            fallback_classes: self
                .fallback_classes
                .into_iter()
                .map(|(c, n)| (c.to_string(), n))
                .collect(),
            initial_tune_packets: self.initial_tune_packets,
            patch_packets: self.patch_packets,
            retune_packets: self.retune_packets,
            cycle_packets: ctx.cycle(0, method).len(),
            patch_cycle_packets: ctx.patch_cycles.iter().map(BroadcastCycle::len).sum(),
            mean_update_packets_per_version: if update_sessions > 0.0 {
                (self.patch_packets + self.retune_packets) as f64 / update_sessions
            } else {
                0.0
            },
        }
    }
}

fn open_dyn_channel<'a>(
    ctx: &DynamicContext,
    cycle: &'a BroadcastCycle,
    seed: u64,
) -> BroadcastChannel<'a> {
    let offset = match ctx.spec.base.tune_in {
        TuneInSpec::Start => 0,
        TuneInSpec::Uniform => (splitmix64(seed) % cycle.len() as u64) as usize,
    };
    BroadcastChannel::tune_in(
        cycle,
        offset,
        ctx.spec.base.loss.model(splitmix64(seed ^ 0x10C5)),
    )
}

/// Derives the `k`-th supervised attempt's seed (attempt 0 reuses the
/// base so fault-free fallbacks are reproducible against plain sessions).
fn attempt_seed(base: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        base
    } else {
        splitmix64(base ^ u64::from(attempt))
    }
}

fn patch_error_class(e: &PatchError) -> &'static str {
    match e {
        PatchError::Stale { .. } => "stale_version",
        PatchError::MissingEdge { .. } => "patch_missing_edge",
        PatchError::Aborted(_) => "patch_aborted",
    }
}

/// Runs one (scenario × method) dynamic cell: every query at every
/// version, each answer differentially verified against that version's
/// oracle.
pub fn run_dynamic_cell(ctx: &DynamicContext, method: MethodId) -> DynamicCellReport {
    let d = method.descriptor();
    let queue = ctx.spec.base.queue;
    // The dynamic seed space is salted so it never collides with the
    // static engine's or the chaos harness's session streams.
    let seed = splitmix64(ctx.spec.base.seed ^ 0xDA_11_4C);
    let mut acc = DynAcc::new();

    for (qi, (query, oracles)) in ctx.queries.iter().enumerate() {
        // Version 0: a plain full session on the base world's cycle.
        let mut client = ctx.client(0, method);
        let cycle0 = ctx.cycle(0, method);
        let seed0 = session_seed(seed, method, qi, 0);
        let mut ch = open_dyn_channel(ctx, cycle0, seed0);
        let first = client.query(&mut ch, query);
        acc.initial_tune_packets += ch.tuned();
        let mut arena: Option<ClientArena> = match first {
            Ok(out) => {
                acc.check(ctx, 0, query, oracles[0], Some((out.distance, out.path)));
                if d.patches_incrementally {
                    client.export_arena()
                } else {
                    None
                }
            }
            Err(_) => {
                // Lossless/lossy sessions recover internally; an error
                // here contradicts the reachable oracle.
                acc.answered += 1;
                acc.mismatches += 1;
                None
            }
        };

        for (v, &oracle) in oracles.iter().enumerate().skip(1) {
            let vseed = session_seed(seed, method, qi, v);
            if let Some(ar) = arena.as_mut() {
                // One patch session: directory + held regions only. The
                // patch cycle repeats on air until the next version, so a
                // lossy attempt just listens again — deltas carry absolute
                // weights, making re-application idempotent. Attempts are
                // bounded by the same recovery budget the §6.2 supervisor
                // enforces; only then does the client give up on the
                // arena and fall back to a full re-tune.
                let patch_base = splitmix64(vseed ^ 0x9A7C);
                let mut patched = Err(PatchError::Aborted("no patch attempt ran"));
                for k in 0..FAULT_BUDGET.max_attempts {
                    let mut pch =
                        open_dyn_channel(ctx, ctx.patch_cycle(v), attempt_seed(patch_base, k));
                    patched = receive_patch(&mut pch, v as u32 - 1, &ar.coverage, &mut ar.store);
                    acc.patch_packets += pch.tuned();
                    match &patched {
                        // A stale directory is not a reception fault:
                        // listening again cannot un-stale the arena.
                        Ok(_) | Err(PatchError::Stale { .. }) => break,
                        Err(_) => {}
                    }
                }
                match patched {
                    Ok(_) => {
                        let (res, _, certified) =
                            ar.store
                                .shortest_path_checked(query.source, query.target, queue);
                        if certified {
                            acc.patch_sessions += 1;
                            acc.check(ctx, v, query, oracle, res);
                            continue;
                        }
                        // The changed world routed the journey outside the
                        // arena's materialized set: re-tune.
                        acc.fallback("uncertified_search");
                    }
                    Err(e) => acc.fallback(patch_error_class(&e)),
                }
                arena = None;
            } else if d.patches_incrementally {
                // The chain broke at an earlier version; re-establish it.
                acc.fallback("no_arena");
            }

            if d.patches_incrementally {
                // Supervised full re-tune on version v's world.
                let cycle_v = ctx.cycle(v, method);
                let mut cv = ctx.client(v, method);
                let base = splitmix64(vseed ^ 0x7E71);
                let sup = supervise(FAULT_BUDGET, cycle_v.len(), |k| {
                    let mut rch = open_dyn_channel(ctx, cycle_v, attempt_seed(base, k));
                    let result = cv.query(&mut rch, query);
                    (result, AttemptReport::of(&rch, (0, 0)))
                });
                acc.retune_packets += sup.tuned_packets;
                match sup.outcome {
                    SessionOutcome::Answered(out) => {
                        acc.check(ctx, v, query, oracle, Some((out.distance, out.path)));
                        // The re-tuned arena holds version v: the chain
                        // resumes patching at v + 1.
                        arena = cv.export_arena();
                    }
                    SessionOutcome::Unreachable => {
                        acc.answered += 1;
                        acc.mismatches += 1;
                    }
                    SessionOutcome::Failed(e) => {
                        acc.typed_failures += 1;
                        *acc.fallback_classes.entry(e.root_class()).or_insert(0) += 1;
                    }
                }
            } else {
                // Rebuild method: a fresh full session per version.
                let cycle_v = ctx.cycle(v, method);
                let mut cv = ctx.client(v, method);
                let mut rch = open_dyn_channel(ctx, cycle_v, vseed);
                let result = cv.query(&mut rch, query);
                acc.retune_packets += rch.tuned();
                match result {
                    Ok(out) => acc.check(ctx, v, query, oracle, Some((out.distance, out.path))),
                    Err(_) => {
                        acc.answered += 1;
                        acc.mismatches += 1;
                    }
                }
            }
        }
    }
    acc.into_report(ctx, method)
}

/// Builds every dynamic context, then fans the independent
/// (scenario × method) cells across `threads` workers with the same
/// chunk-ordered merge as the other matrices — bit-identical for every
/// thread count.
pub fn run_dynamic_matrix(
    specs: &[DynamicSpec],
    methods: &[MethodId],
    threads: usize,
) -> DynamicMatrix {
    let contexts: Vec<DynamicContext> = specs.iter().map(DynamicContext::build).collect();
    let mut cells: Vec<(usize, MethodId)> = Vec::new();
    for si in 0..contexts.len() {
        for &m in methods {
            let d = m.descriptor();
            if d.air_client && d.own_channel && !d.knn {
                cells.push((si, m));
            }
        }
    }
    let reports = parallel::map_reduce_chunked(
        &cells,
        threads,
        2,
        || (),
        Vec::new,
        |_, partial: &mut Vec<DynamicCellReport>, chunk, _| {
            for &(si, m) in chunk {
                partial.push(run_dynamic_cell(&contexts[si], m));
            }
        },
        |a, b| a.extend(b),
    )
    .unwrap_or_default();
    DynamicMatrix { cells: reports }
}

fn dyn_base(name: &str, seed: u64, traffic: TrafficSpec, versions: usize) -> DynamicSpec {
    // Big enough that journeys are genuinely local (the regime where
    // partial tuning pays): whole-cycle methods must swallow the entire
    // 20×20 world per version while anchored clients touch a few
    // regions of it.
    let mut s = ScenarioSpec::small(name, seed);
    s.graph = GraphSpec::Grid {
        width: 20,
        height: 20,
    };
    s.regions = 16;
    s.workload = WorkloadMix::p2p(6);
    DynamicSpec {
        base: s,
        traffic,
        versions,
    }
}

/// The default dynamic matrix behind `BENCH_dynamic.json`: pure
/// rush-hour ramps (dense deltas — most edges move every version),
/// ramps with incident spikes (sparse deltas), and incident traffic
/// over a lossy channel (patch reception and §6.2 recovery must
/// compose).
pub fn dynamic_matrix() -> Vec<DynamicSpec> {
    let mut lossy = dyn_base("dyn-lossy-incidents", 503, TrafficSpec::incidents(), 4);
    lossy.base.loss = crate::spec::LossSpec::Bernoulli { rate: 0.05 };
    vec![
        dyn_base("dyn-rushhour", 501, TrafficSpec::rush_hour(), 4),
        dyn_base("dyn-incidents", 502, TrafficSpec::incidents(), 4),
        lossy,
    ]
}

/// The CI smoke gate: two fast worlds covering pure ramps and incident
/// spikes.
pub fn smoke_dynamic_matrix() -> Vec<DynamicSpec> {
    let tiny = |name: &str, seed: u64, traffic: TrafficSpec| {
        let mut s = ScenarioSpec::small(name, seed);
        s.graph = GraphSpec::Grid {
            width: 8,
            height: 8,
        };
        s.workload = WorkloadMix::p2p(4);
        DynamicSpec {
            base: s,
            traffic,
            versions: 3,
        }
    };
    vec![
        tiny("dyn-smoke-rush", 521, TrafficSpec::rush_hour()),
        tiny("dyn-smoke-incidents", 522, TrafficSpec::incidents()),
    ]
}

/// The nightly dynamic matrix: the default set plus a harsher, longer
/// world and a Germany-class (paper-default topology) cell.
pub fn nightly_dynamic_matrix() -> Vec<DynamicSpec> {
    let mut specs = dynamic_matrix();
    specs.push(dyn_base("dyn-harsh", 531, TrafficSpec::harsh(), 6));
    let mut germany = dyn_base("dyn-germany2k", 532, TrafficSpec::incidents(), 4);
    germany.base.graph = GraphSpec::PresetNodes {
        preset: NetworkPreset::Germany,
        nodes: 2000,
    };
    germany.base.regions = 16;
    specs.push(germany);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(seed: u64) -> DynamicSpec {
        let mut s = ScenarioSpec::small("dyn-test", seed);
        s.graph = GraphSpec::Grid {
            width: 8,
            height: 8,
        };
        s.workload = WorkloadMix::p2p(3);
        DynamicSpec {
            base: s,
            traffic: TrafficSpec::rush_hour(),
            versions: 3,
        }
    }

    #[test]
    fn incremental_methods_patch_and_stay_exact() {
        let ctx = DynamicContext::build(&quick_spec(61));
        for m in [MethodId::NR, MethodId::EB, MethodId::DJ] {
            let r = run_dynamic_cell(&ctx, m);
            assert!(r.exact(), "{}: {} mismatches", m.name(), r.mismatches);
            assert!(r.patches_incrementally);
            assert_eq!(r.answered, r.queries * r.versions);
            assert!(
                r.patch_sessions > 0,
                "{}: some version must be served by a patch",
                m.name()
            );
        }
    }

    #[test]
    fn rebuild_methods_retune_every_version_and_stay_exact() {
        let ctx = DynamicContext::build(&quick_spec(62));
        for m in [MethodId::LD, MethodId::AF] {
            let r = run_dynamic_cell(&ctx, m);
            assert!(r.exact(), "{}: {} mismatches", m.name(), r.mismatches);
            assert!(!r.patches_incrementally);
            assert_eq!(r.patch_sessions, 0);
            assert!(r.retune_packets >= (r.cycle_packets * r.queries * (r.versions - 1)) as u64);
        }
    }

    #[test]
    fn oracles_change_across_versions() {
        let ctx = DynamicContext::build(&quick_spec(63));
        assert!(
            ctx.queries
                .iter()
                .any(|(_, oracles)| oracles.windows(2).any(|w| w[0] != w[1])),
            "rush-hour ramps must move at least one oracle distance"
        );
    }

    #[test]
    fn patching_beats_whole_cycle_retuning() {
        let ctx = DynamicContext::build(&quick_spec(64));
        let nr = run_dynamic_cell(&ctx, MethodId::NR);
        let ld = run_dynamic_cell(&ctx, MethodId::LD);
        assert!(
            nr.mean_update_packets_per_version < ld.mean_update_packets_per_version,
            "NR patches ({:.1}/v) must undercut LD rebuilds ({:.1}/v)",
            nr.mean_update_packets_per_version,
            ld.mean_update_packets_per_version
        );
    }

    #[test]
    fn dynamic_matrix_is_thread_invariant() {
        let specs = vec![quick_spec(65)];
        let methods = [MethodId::NR, MethodId::DJ, MethodId::LD];
        let serial = run_dynamic_matrix(&specs, &methods, 1);
        let par = run_dynamic_matrix(&specs, &methods, 4);
        assert_eq!(serial.to_json(), par.to_json());
        assert_eq!(serial.digest(), par.digest());
    }

    #[test]
    fn matrices_are_well_formed() {
        for specs in [
            dynamic_matrix(),
            smoke_dynamic_matrix(),
            nightly_dynamic_matrix(),
        ] {
            assert!(!specs.is_empty());
            let mut names: Vec<&str> = specs.iter().map(|s| s.base.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), specs.len(), "scenario names must be unique");
            for s in &specs {
                assert!(s.versions >= 2);
                assert!(s.base.workload.point_to_point > 0);
            }
        }
        assert!(dynamic_methods().len() >= 8);
    }
}
