//! Conformance-matrix reports.
//!
//! One [`CellReport`] summarizes one (scenario × method) cell: how many
//! queries ran, whether every answer matched the serial Dijkstra oracle,
//! and the aggregated §3.1 cost factors. All fields except `cpu_ms` are
//! pure functions of the scenario seed, so [`ConformanceMatrix::digest`]
//! and [`ConformanceMatrix::to_json`]`(false)` are byte-for-byte
//! reproducible across runs and thread counts; wall-clock CPU rides along
//! in the full JSON for human consumption only.

/// Aggregated result of one (scenario × method) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario name (matrix row).
    pub scenario: String,
    /// Method name (matrix column).
    pub method: &'static str,
    /// Work items run (queries of every kind).
    pub queries: usize,
    /// Channel sessions opened (on-edge items decompose into up to four).
    pub air_queries: usize,
    /// Answers that did not exactly match the oracle. The matrix is green
    /// iff this is 0 everywhere.
    pub mismatches: usize,
    /// Total packets received.
    pub tuning_packets: u64,
    /// Total packets elapsed.
    pub latency_packets: u64,
    /// Total packets slept.
    pub sleep_packets: u64,
    /// Worst single point-to-point item latency, in packets.
    pub max_p2p_latency_packets: u64,
    /// Worst single on-edge item latency (sum over its sub-queries).
    pub max_onedge_latency_packets: u64,
    /// Worst single kNN item latency.
    pub max_knn_latency_packets: u64,
    /// Broadcast cycle length of the method's program, in packets.
    pub cycle_packets: usize,
    /// Peak client memory over all queries.
    pub peak_memory_bytes: usize,
    /// Peak memory within the scenario's device heap budget.
    pub within_memory_budget: bool,
    /// Total client-side settled nodes (CPU-model cross-check).
    pub settled_nodes: u64,
    /// Radio (receive + sleep) energy over the cell in joules — a pure
    /// function of packet counts, hence deterministic.
    pub radio_energy_joules: f64,
    /// Client CPU milliseconds (wall clock; excluded from the digest).
    pub cpu_ms: f64,
}

impl CellReport {
    /// Whether every answer in the cell matched the oracle.
    pub fn exact(&self) -> bool {
        self.mismatches == 0
    }

    fn json_fields(&self, include_timings: bool) -> String {
        let mut s = format!(
            "\"scenario\": \"{}\", \"method\": \"{}\", \"queries\": {}, \
             \"air_queries\": {}, \"mismatches\": {}, \"exact\": {}, \
             \"tuning_packets\": {}, \"latency_packets\": {}, \"sleep_packets\": {}, \
             \"max_p2p_latency_packets\": {}, \"max_onedge_latency_packets\": {}, \
             \"max_knn_latency_packets\": {}, \"cycle_packets\": {}, \
             \"peak_memory_bytes\": {}, \"within_memory_budget\": {}, \
             \"settled_nodes\": {}, \"radio_energy_joules\": {:.6}",
            self.scenario,
            self.method,
            self.queries,
            self.air_queries,
            self.mismatches,
            self.exact(),
            self.tuning_packets,
            self.latency_packets,
            self.sleep_packets,
            self.max_p2p_latency_packets,
            self.max_onedge_latency_packets,
            self.max_knn_latency_packets,
            self.cycle_packets,
            self.peak_memory_bytes,
            self.within_memory_budget,
            self.settled_nodes,
            self.radio_energy_joules,
        );
        if include_timings {
            s.push_str(&format!(", \"cpu_ms\": {:.3}", self.cpu_ms));
        }
        s
    }
}

/// The full conformance matrix of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceMatrix {
    /// Every (scenario × method) cell, in scenario-major order.
    pub cells: Vec<CellReport>,
}

impl ConformanceMatrix {
    /// Whether every cell is exact — the conformance gate.
    pub fn all_exact(&self) -> bool {
        self.cells.iter().all(CellReport::exact)
    }

    /// Total mismatches across the matrix.
    pub fn total_mismatches(&self) -> usize {
        self.cells.iter().map(|c| c.mismatches).sum()
    }

    /// FNV-1a digest over the deterministic fields. Equal digests across
    /// thread counts / reruns certify reproducibility.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json(false).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serializes the matrix. With `include_timings = false` the output
    /// contains only deterministic fields and is byte-for-byte
    /// reproducible from the scenario seeds.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&c.json_fields(include_timings));
            out.push_str(" }");
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// A fixed-width text table (one row per cell) for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<28} {:<13} {:>4} {:>5} {:>9} {:>9} {:>10} {:>8}\n",
            "Scenario", "Method", "Q", "OK", "Tuning", "Latency", "PeakMem", "Energy"
        );
        for c in &self.cells {
            let per_q = |v: u64| {
                if c.queries == 0 {
                    0.0
                } else {
                    v as f64 / c.queries as f64
                }
            };
            out.push_str(&format!(
                "{:<28} {:<13} {:>4} {:>5} {:>9.0} {:>9.0} {:>10} {:>8.3}\n",
                c.scenario,
                c.method,
                c.queries,
                if c.exact() { "yes" } else { "NO" },
                per_q(c.tuning_packets),
                per_q(c.latency_packets),
                c.peak_memory_bytes,
                c.radio_energy_joules,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, mismatches: usize) -> CellReport {
        CellReport {
            scenario: scenario.to_string(),
            method: "nr",
            queries: 4,
            air_queries: 4,
            mismatches,
            tuning_packets: 100,
            latency_packets: 400,
            sleep_packets: 300,
            max_p2p_latency_packets: 120,
            max_onedge_latency_packets: 0,
            max_knn_latency_packets: 0,
            cycle_packets: 200,
            peak_memory_bytes: 1000,
            within_memory_budget: true,
            settled_nodes: 42,
            radio_energy_joules: 1.25,
            cpu_ms: 3.0,
        }
    }

    #[test]
    fn exactness_gates_on_mismatches() {
        let m = ConformanceMatrix {
            cells: vec![cell("a", 0), cell("b", 0)],
        };
        assert!(m.all_exact());
        let bad = ConformanceMatrix {
            cells: vec![cell("a", 0), cell("b", 2)],
        };
        assert!(!bad.all_exact());
        assert_eq!(bad.total_mismatches(), 2);
    }

    #[test]
    fn digest_ignores_cpu_time() {
        let mut a = ConformanceMatrix {
            cells: vec![cell("a", 0)],
        };
        let d0 = a.digest();
        a.cells[0].cpu_ms = 999.0;
        assert_eq!(a.digest(), d0, "cpu time must not affect the digest");
        a.cells[0].tuning_packets += 1;
        assert_ne!(a.digest(), d0, "deterministic fields must");
    }

    #[test]
    fn json_with_timings_is_a_superset() {
        let m = ConformanceMatrix {
            cells: vec![cell("a", 0)],
        };
        assert!(!m.to_json(false).contains("cpu_ms"));
        assert!(m.to_json(true).contains("cpu_ms"));
    }
}
