//! Deterministic scenario simulation harness and cross-method conformance
//! matrix.
//!
//! The paper's central claim is that the air-index methods compute *exact*
//! shortest paths while trading tuning time, latency and energy. This
//! crate turns that claim into an executable artifact: a seeded
//! [`ScenarioSpec`] describes one simulated world — graph, partitioner
//! (kd-median or uniform-grid splits), loss model (lossless / Bernoulli /
//! Gilbert–Elliott bursty), tune-in distribution, channel rate, device
//! heap budget, queue policy and a query workload mixing point-to-point,
//! on-edge and kNN queries — and the engine drives **every client method**
//! (`nr`, `eb`, `dj`, `ld`, `af`, `spq_air`, `hiti_air`, the §6.1
//! memory-bound variant and the §8 kNN client) through it, differentially
//! verifying each answer against a serial Dijkstra oracle.
//!
//! Which methods exist is no longer this crate's business: the engine
//! iterates `spair_methods::MethodRegistry` and dispatches every cell by
//! the method's declared capabilities, so registering a new
//! `BroadcastMethod` (one file + one registry line) adds a conformance
//! matrix column with zero edits here.
//!
//! Results aggregate into a [`ConformanceMatrix`] of (scenario × method)
//! cells carrying the §3.1 cost factors plus a radio energy figure. The
//! independent cells fan out across threads via the deterministic
//! chunk-ordered map-reduce of `spair_roadnet::parallel`, so a matrix is
//! **bit-identical for every thread count** — certified by
//! [`ConformanceMatrix::digest`].
//!
//! ```text
//! cargo run --release -p spair-sim --bin bench_scenarios
//! ```
//! runs the default matrix and emits `BENCH_scenarios.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod engine;
pub mod faults;
pub mod matrix;
pub mod report;
pub mod spec;
pub mod traffic;

pub use dynamic::{
    dynamic_matrix, dynamic_methods, nightly_dynamic_matrix, run_dynamic_cell, run_dynamic_matrix,
    smoke_dynamic_matrix, DynamicCellReport, DynamicContext, DynamicMatrix, DynamicSpec,
};
pub use engine::{run_cell, run_matrix, ScenarioContext, WorkItem};
pub use faults::{
    fault_matrix, nightly_fault_matrix, run_fault_cell, run_fault_matrix, smoke_fault_matrix,
    FaultCellReport, FaultMatrix,
};
pub use matrix::{default_matrix, nightly_matrix, smoke_matrix};
pub use report::{CellReport, ConformanceMatrix};
pub use spair_methods::{
    MethodDescriptor, MethodId, MethodRegistry, MethodUnavailable, SessionShape,
};
pub use spec::{
    FaultSpec, GraphSpec, LossSpec, PartitionerKind, ScenarioSpec, TuneInSpec, WorkloadMix,
};
pub use traffic::{network_at, version_deltas, weight_at, TrafficSpec};
