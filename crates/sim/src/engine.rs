//! The deterministic scenario engine.
//!
//! [`ScenarioContext::build`] expands a [`ScenarioSpec`] into a concrete
//! world: the generated network, its partition and border precomputation,
//! the seeded workload with its serial-Dijkstra oracle answers, and —
//! through the method registry's [`ProgramSet`] — one broadcast program
//! per requested method. [`run_cell`] then drives one method through the
//! whole workload — every channel session gets a loss model and tune-in
//! offset derived from the scenario seed alone — and differentially
//! verifies each answer against the oracle.
//!
//! Methods are dispatched by **capability**, not by name: the engine
//! never matches on a method enum. A method whose descriptor says
//! `air_client` runs the generic p2p/on-edge session loop; `knn` runs
//! the kNN portion; everything else answers locally through
//! [`spair_methods::MethodProgram::local_answer`] (the §6.1 memory-bound
//! contraction). Missing programs surface as typed
//! [`MethodUnavailable`] cell failures instead of `expect` panics.
//!
//! [`run_matrix`] fans the independent (scenario × method) cells across
//! threads with [`spair_roadnet::parallel::map_reduce_chunked`], whose
//! chunk-ordered merge makes the resulting
//! [`ConformanceMatrix`] bit-identical to a serial run for every thread
//! count.

use crate::report::{CellReport, ConformanceMatrix};
use crate::spec::{PartitionerKind, ScenarioSpec, TuneInSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, EnergyModel, QueryStats};
use spair_core::query::AirClient;
use spair_core::{on_edge_query, BorderPrecomputation, OnEdgePoint, Query, QueryError};
use spair_methods::{
    MethodId, MethodProgram, MethodRegistry, MethodUnavailable, ProgramSet, World,
};
use spair_partition::KdTreePartition;
use spair_roadnet::{
    dijkstra_distance, dijkstra_full, insert_positions, parallel, Distance, EdgePosition, NodeId,
    Point, RoadNetwork, Weight,
};

/// SplitMix64 — the seed-derivation PRNG. Every channel session's seed is
/// a pure function of (scenario seed, method ordinal, query index,
/// sub-query index), so runs are reproducible for any thread schedule.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn session_seed(scenario_seed: u64, method: MethodId, query: usize, sub: usize) -> u64 {
    let ordinal = u64::from(method.ordinal());
    splitmix64(
        scenario_seed
            ^ splitmix64(ordinal.wrapping_add(1))
            ^ splitmix64(((query as u64) << 8) | sub as u64),
    )
}

/// One verified unit of workload, with its oracle answer.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// Node-to-node shortest-path query.
    P2p {
        /// The query.
        query: Query,
        /// Serial-Dijkstra distance.
        oracle: Distance,
    },
    /// Arbitrary on-edge positions (§5 closing remark).
    OnEdge {
        /// Source position.
        src: OnEdgePoint,
        /// Destination position.
        dst: OnEdgePoint,
        /// Distance on the physically split reference graph.
        oracle: Distance,
    },
    /// kNN over the scenario's POI set (§8).
    Knn {
        /// Query node.
        source: NodeId,
        /// Query coordinates.
        source_pt: Point,
        /// Neighbors requested.
        k: usize,
        /// The k smallest POI distances, ascending.
        oracle: Vec<Distance>,
    },
}

/// A fully expanded scenario: immutable once built, shared read-only by
/// every cell that runs against it.
pub struct ScenarioContext {
    /// The spec this context expands.
    pub spec: ScenarioSpec,
    /// Seeded workload with oracle answers.
    pub workload: Vec<WorkItem>,
    /// Lazy per-method programs over the expanded world.
    programs: ProgramSet,
}

impl ScenarioContext {
    /// Expands `spec`, building programs only for `methods` (and only
    /// where the spec's workload gives them work to do).
    pub fn build(spec: &ScenarioSpec, methods: &[MethodId]) -> Self {
        let g = spec.graph.build(spec.seed);
        let part = match spec.partitioner {
            PartitionerKind::KdMedian => KdTreePartition::build(&g, spec.regions),
            PartitionerKind::UniformGrid => KdTreePartition::build_uniform(&g, spec.regions),
        };
        let pre = BorderPrecomputation::run(&g, &part);
        let (workload, pois) = generate_workload(spec, &g);
        let programs = ProgramSet::new(World::from_parts(g, part, pre).with_pois(pois));
        let ctx = Self {
            spec: spec.clone(),
            workload,
            programs,
        };
        for &m in methods {
            if ctx.has_work(m) {
                ctx.programs.ensure(m);
            }
        }
        ctx
    }

    /// Whether the spec's workload gives the method anything to run.
    pub fn has_work(&self, method: MethodId) -> bool {
        if method.descriptor().knn {
            self.spec.workload.knn > 0
        } else {
            self.spec.workload.point_to_point + self.spec.workload.on_edge > 0
        }
    }

    /// The expanded world (network, partition, precomputation, POIs).
    pub fn world(&self) -> &World {
        self.programs.world()
    }

    /// The generated network.
    pub fn g(&self) -> &RoadNetwork {
        &self.programs.world().g
    }

    /// The method's built program, or a typed error if it was not
    /// requested at build time.
    pub fn program(&self, method: MethodId) -> Result<&dyn MethodProgram, MethodUnavailable> {
        self.programs.get(method)
    }

    /// The broadcast cycle the given method's clients tune in to. Also
    /// the shared air cycle the load harness serves its populations
    /// from. Typed errors replace the old `expect("… program")` panics:
    /// `NotBuilt` if the method was not requested, `NoOwnChannel` for
    /// the §6.1 runner (whose *reports* quote NR's cycle — see
    /// [`ScenarioContext::reported_cycle_packets`] — but which has no
    /// channel to tune in to).
    pub fn cycle(&self, method: MethodId) -> Result<&BroadcastCycle, MethodUnavailable> {
        self.programs.get(method)?.cycle()
    }

    /// A fresh client device for the given method (every session models
    /// an independent mobile client), or a typed error where the old
    /// dispatch had an `unreachable!` arm.
    pub fn client(&self, method: MethodId) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        self.programs.get(method)?.make_client(self.spec.queue)
    }

    /// Cycle length quoted in the method's cell reports (its own, or —
    /// explicitly, per the descriptor's `reference_cycle` — NR's for the
    /// channel-less §6.1 runner, built on demand through the program set
    /// and shared with the `nr` column when both run). 0 if no program
    /// was built.
    pub fn reported_cycle_packets(&self, method: MethodId) -> usize {
        match self.programs.get(method).map(|p| p.cycle()) {
            Ok(Ok(cycle)) => cycle.len(),
            Ok(Err(MethodUnavailable::NoOwnChannel { reference, .. })) => {
                MethodRegistry::standard()
                    .get(reference)
                    .ok()
                    .and_then(|r| self.programs.ensure(r).cycle().ok())
                    .map(|c| c.len())
                    .unwrap_or(0)
            }
            _ => 0,
        }
    }
}

/// Generates the seeded workload and the POI set for a spec.
fn generate_workload(spec: &ScenarioSpec, g: &RoadNetwork) -> (Vec<WorkItem>, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(splitmix64(spec.seed ^ 0x574F_524B));
    let mut items = Vec::new();

    for _ in 0..spec.workload.point_to_point {
        // Reachable pair (generated networks are connected, but a guard
        // keeps degenerate specs from spinning).
        let mut found = None;
        for _ in 0..64 {
            let s = rng.gen_range(0..n) as NodeId;
            let mut t = rng.gen_range(0..n) as NodeId;
            while t == s {
                t = rng.gen_range(0..n) as NodeId;
            }
            if let Some(d) = dijkstra_distance(g, s, t) {
                found = Some((Query::for_nodes(g, s, t), d));
                break;
            }
        }
        let (query, oracle) = found.expect("no reachable query pair in 64 draws");
        items.push(WorkItem::P2p { query, oracle });
    }

    if spec.workload.on_edge > 0 {
        // Symmetric arcs wide enough to hold an interior position.
        let mut arcs: Vec<(NodeId, NodeId, Weight)> = Vec::new();
        for v in g.node_ids() {
            for (u, w) in g.out_edges(v) {
                if v < u && w >= 2 && g.weight_between(u, v) == Some(w) {
                    arcs.push((v, u, w));
                }
            }
        }
        assert!(
            arcs.len() >= 2,
            "on-edge workload needs >= 2 splittable undirected arcs"
        );
        for _ in 0..spec.workload.on_edge {
            let mut found = None;
            for _ in 0..64 {
                let i = rng.gen_range(0..arcs.len());
                let mut j = rng.gen_range(0..arcs.len());
                while j == i {
                    j = rng.gen_range(0..arcs.len());
                }
                let (a1, b1, w1) = arcs[i];
                let (a2, b2, w2) = arcs[j];
                let o1 = rng.gen_range(1..w1);
                let o2 = rng.gen_range(1..w2);
                let (g2, ids) = insert_positions(
                    g,
                    &[
                        EdgePosition {
                            from: a1,
                            to: b1,
                            along: o1,
                        },
                        EdgePosition {
                            from: a2,
                            to: b2,
                            along: o2,
                        },
                    ],
                );
                if let Some(d) = dijkstra_distance(&g2, ids[0], ids[1]) {
                    found = Some((
                        OnEdgePoint::on_undirected(g, a1, b1, o1),
                        OnEdgePoint::on_undirected(g, a2, b2, o2),
                        d,
                    ));
                    break;
                }
            }
            let (src, dst, oracle) = found.expect("no reachable on-edge pair in 64 draws");
            items.push(WorkItem::OnEdge { src, dst, oracle });
        }
    }

    let mut pois: Vec<NodeId> = Vec::new();
    if spec.workload.knn > 0 {
        let want = (n / 20).max(spec.workload.k + 2).min(n);
        while pois.len() < want {
            let v = rng.gen_range(0..n) as NodeId;
            if !pois.contains(&v) {
                pois.push(v);
            }
        }
        pois.sort_unstable();
        for _ in 0..spec.workload.knn {
            let source = rng.gen_range(0..n) as NodeId;
            let tree = dijkstra_full(g, source);
            let mut dists: Vec<Distance> = pois
                .iter()
                .copied()
                .filter(|&p| tree.reachable(p))
                .map(|p| tree.distance(p))
                .collect();
            dists.sort_unstable();
            dists.truncate(spec.workload.k);
            items.push(WorkItem::Knn {
                source,
                source_pt: g.point(source),
                k: spec.workload.k,
                oracle: dists,
            });
        }
    }
    (items, pois)
}

/// True iff `path` is a real `source -> target` walk in `g` whose weights
/// sum to `distance` — the conformance check behind "exact shortest
/// paths", not just matching lengths.
pub(crate) fn path_is_valid(
    g: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    distance: Distance,
    path: &[NodeId],
) -> bool {
    if path.first() != Some(&source) || path.last() != Some(&target) {
        return false;
    }
    let mut acc: Distance = 0;
    for w in path.windows(2) {
        match g.weight_between(w[0], w[1]) {
            Some(wt) => acc += wt as Distance,
            None => return false,
        }
    }
    acc == distance
}

/// Per-cell accumulation state.
struct CellAcc {
    queries: usize,
    air_queries: usize,
    mismatches: usize,
    total: QueryStats,
    max_p2p: u64,
    max_onedge: u64,
    max_knn: u64,
}

impl CellAcc {
    fn new() -> Self {
        Self {
            queries: 0,
            air_queries: 0,
            mismatches: 0,
            total: QueryStats::default(),
            max_p2p: 0,
            max_onedge: 0,
            max_knn: 0,
        }
    }

    fn into_report(self, ctx: &ScenarioContext, method: MethodId) -> CellReport {
        let (rx, sleep, cpu) = EnergyModel::WAVELAN_ARM.breakdown(&self.total, ctx.spec.rate);
        CellReport {
            scenario: ctx.spec.name.clone(),
            method: method.name(),
            queries: self.queries,
            air_queries: self.air_queries,
            mismatches: self.mismatches,
            tuning_packets: self.total.tuning_packets,
            latency_packets: self.total.latency_packets,
            sleep_packets: self.total.sleep_packets,
            max_p2p_latency_packets: self.max_p2p,
            max_onedge_latency_packets: self.max_onedge,
            max_knn_latency_packets: self.max_knn,
            cycle_packets: ctx.reported_cycle_packets(method),
            peak_memory_bytes: self.total.peak_memory_bytes,
            within_memory_budget: self.total.peak_memory_bytes <= ctx.spec.heap_budget_bytes,
            settled_nodes: self.total.settled_nodes,
            radio_energy_joules: rx + sleep,
            cpu_ms: cpu / EnergyModel::WAVELAN_ARM.cpu_watts * 1000.0,
        }
    }
}

/// Runs one (scenario × method) cell: the full workload, differentially
/// verified against the oracle. Dispatch is capability-driven (no
/// per-method `match`): kNN methods run the kNN portion, air clients the
/// session loop, channel-less methods the local §6.1 pipeline. A method
/// whose program is unavailable yields a fully failed cell (every work
/// item of its portion counted as a mismatch) — surfacing the error in
/// the matrix instead of panicking.
pub fn run_cell(ctx: &ScenarioContext, method: MethodId) -> CellReport {
    let d = method.descriptor();
    match ctx.program(method) {
        Err(_) => unavailable_cell(ctx, method),
        Ok(_) if d.knn => run_knn_cell(ctx, method),
        Ok(program) if !d.air_client => run_local_cell(ctx, method, program),
        Ok(_) => run_air_cell(ctx, method),
    }
}

/// The all-failed report of a method whose program is unavailable.
fn unavailable_cell(ctx: &ScenarioContext, method: MethodId) -> CellReport {
    let mut acc = CellAcc::new();
    for item in ctx.workload.iter() {
        let counts = if method.descriptor().knn {
            matches!(item, WorkItem::Knn { .. })
        } else {
            !matches!(item, WorkItem::Knn { .. })
        };
        if counts {
            acc.queries += 1;
            acc.mismatches += 1;
        }
    }
    acc.into_report(ctx, method)
}

fn open_channel<'a>(
    ctx: &'a ScenarioContext,
    cycle: &'a BroadcastCycle,
    seed: u64,
) -> BroadcastChannel<'a> {
    let offset = match ctx.spec.tune_in {
        TuneInSpec::Start => 0,
        TuneInSpec::Uniform => (splitmix64(seed) % cycle.len() as u64) as usize,
    };
    BroadcastChannel::tune_in(
        cycle,
        offset,
        ctx.spec.loss.model(splitmix64(seed ^ 0x10C5)),
    )
}

fn run_air_cell(ctx: &ScenarioContext, method: MethodId) -> CellReport {
    let cycle = ctx.cycle(method).expect("air program built");
    let mut client = ctx.client(method).expect("air client");
    let g = ctx.g();
    let mut acc = CellAcc::new();
    for (qi, item) in ctx.workload.iter().enumerate() {
        match item {
            WorkItem::P2p { query, oracle } => {
                let seed = session_seed(ctx.spec.seed, method, qi, 0);
                let mut ch = open_channel(ctx, cycle, seed);
                acc.queries += 1;
                acc.air_queries += 1;
                match client.query(&mut ch, query) {
                    Ok(out) => {
                        let ok = out.distance == *oracle
                            && path_is_valid(
                                g,
                                query.source,
                                query.target,
                                out.distance,
                                &out.path,
                            );
                        if !ok {
                            acc.mismatches += 1;
                        }
                        acc.max_p2p = acc.max_p2p.max(out.stats.latency_packets);
                        acc.total.add(&out.stats);
                    }
                    Err(_) => acc.mismatches += 1,
                }
            }
            WorkItem::OnEdge { src, dst, oracle } => {
                acc.queries += 1;
                let mut sub = 0usize;
                let mut item_latency = 0u64;
                let result = on_edge_query(src, dst, |q| {
                    sub += 1;
                    let seed = session_seed(ctx.spec.seed, method, qi, sub);
                    let mut ch = open_channel(ctx, cycle, seed);
                    let out = client.query(&mut ch, q);
                    if let Ok(out) = &out {
                        item_latency += out.stats.latency_packets;
                    }
                    out
                });
                acc.air_queries += sub;
                match result {
                    Ok(out) => {
                        if out.distance != *oracle {
                            acc.mismatches += 1;
                        }
                        acc.max_onedge = acc.max_onedge.max(item_latency);
                        acc.total.add(&out.stats);
                    }
                    Err(_) => acc.mismatches += 1,
                }
            }
            WorkItem::Knn { .. } => {} // the kNN method's portion
        }
    }
    acc.into_report(ctx, method)
}

fn run_knn_cell(ctx: &ScenarioContext, method: MethodId) -> CellReport {
    let program = ctx.program(method).expect("knn program built");
    let cycle = program.cycle().expect("knn methods broadcast a cycle");
    let mut client = program.make_knn_client().expect("knn client");
    let mut acc = CellAcc::new();
    for (qi, item) in ctx.workload.iter().enumerate() {
        let WorkItem::Knn {
            source,
            source_pt,
            k,
            oracle,
        } = item
        else {
            continue;
        };
        let seed = session_seed(ctx.spec.seed, method, qi, 0);
        let mut ch = open_channel(ctx, cycle, seed);
        acc.queries += 1;
        acc.air_queries += 1;
        match client.query(&mut ch, *source, *source_pt, *k) {
            Ok(out) => {
                let got: Vec<Distance> = out.neighbors.iter().map(|nb| nb.distance).collect();
                // Ties may swap POI identities; distances must agree
                // exactly (ascending on both sides).
                if got != *oracle {
                    acc.mismatches += 1;
                }
                acc.max_knn = acc.max_knn.max(out.stats.latency_packets);
                acc.total.add(&out.stats);
            }
            Err(_) => acc.mismatches += 1,
        }
    }
    acc.into_report(ctx, method)
}

/// Channel-less methods (§6.1 memory-bound contraction): every p2p and
/// on-edge item is answered through the program's
/// [`MethodProgram::local_answer`]. Channel costs are not simulated (the
/// data is the reference method's own region set); the stats carry the
/// contraction's memory/CPU, which is the quantity §6.1 is about.
fn run_local_cell(
    ctx: &ScenarioContext,
    method: MethodId,
    program: &dyn MethodProgram,
) -> CellReport {
    let g = ctx.g();
    let queue = ctx.spec.queue;
    let answer = |q: &Query| {
        program
            .local_answer(q, queue)
            .unwrap_or(Err(QueryError::Aborted("method answers no local queries")))
    };
    let mut acc = CellAcc::new();
    for item in ctx.workload.iter() {
        match item {
            WorkItem::P2p { query, oracle } => {
                acc.queries += 1;
                acc.air_queries += 1;
                match answer(query) {
                    Ok(out) => {
                        let ok = out.distance == *oracle
                            && path_is_valid(
                                g,
                                query.source,
                                query.target,
                                out.distance,
                                &out.path,
                            );
                        if !ok {
                            acc.mismatches += 1;
                        }
                        acc.total.add(&out.stats);
                    }
                    Err(_) => acc.mismatches += 1,
                }
            }
            WorkItem::OnEdge { src, dst, oracle } => {
                acc.queries += 1;
                let mut subs = 0usize;
                let result = on_edge_query(src, dst, |q| {
                    subs += 1;
                    answer(q)
                });
                acc.air_queries += subs;
                match result {
                    Ok(out) => {
                        if out.distance != *oracle {
                            acc.mismatches += 1;
                        }
                        acc.total.add(&out.stats);
                    }
                    Err(_) => acc.mismatches += 1,
                }
            }
            WorkItem::Knn { .. } => {}
        }
    }
    acc.into_report(ctx, method)
}

/// Builds every scenario context, then fans the independent
/// (scenario × method) cells across `threads` workers. The chunk-ordered
/// merge of [`parallel::map_reduce_chunked`] keeps the cell order — and
/// therefore the report bytes and digest — identical for every thread
/// count.
pub fn run_matrix(
    specs: &[ScenarioSpec],
    methods: &[MethodId],
    threads: usize,
) -> ConformanceMatrix {
    let contexts: Vec<ScenarioContext> = specs
        .iter()
        .map(|s| ScenarioContext::build(s, methods))
        .collect();
    let mut cells: Vec<(usize, MethodId)> = Vec::new();
    for (si, ctx) in contexts.iter().enumerate() {
        for &m in methods {
            if ctx.has_work(m) {
                cells.push((si, m));
            }
        }
    }
    let reports = parallel::map_reduce_chunked(
        &cells,
        threads,
        2,
        || (),
        Vec::new,
        |_, partial: &mut Vec<CellReport>, chunk, _| {
            for &(si, m) in chunk {
                partial.push(run_cell(&contexts[si], m));
            }
        },
        |a, b| a.extend(b),
    )
    .unwrap_or_default();
    ConformanceMatrix { cells: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LossSpec, WorkloadMix};

    #[test]
    fn session_seeds_are_distinct_per_coordinate() {
        let a = session_seed(1, MethodId::NR, 0, 0);
        let b = session_seed(1, MethodId::EB, 0, 0);
        let c = session_seed(1, MethodId::NR, 1, 0);
        let d = session_seed(1, MethodId::NR, 0, 1);
        let e = session_seed(2, MethodId::NR, 0, 0);
        let all = [a, b, c, d, e];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn workload_is_reproducible_and_oracle_backed() {
        let spec = ScenarioSpec::small("w", 7);
        let g = spec.graph.build(spec.seed);
        let (a, pa) = generate_workload(&spec, &g);
        let (b, pb) = generate_workload(&spec, &g);
        assert_eq!(a.len(), b.len());
        assert_eq!(pa, pb);
        assert_eq!(
            a.len(),
            spec.workload.point_to_point + spec.workload.on_edge + spec.workload.knn
        );
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (
                    WorkItem::P2p {
                        query: qx,
                        oracle: ox,
                    },
                    WorkItem::P2p {
                        query: qy,
                        oracle: oy,
                    },
                ) => {
                    assert_eq!(qx, qy);
                    assert_eq!(ox, oy);
                    assert_eq!(dijkstra_distance(&g, qx.source, qx.target), Some(*ox));
                }
                (WorkItem::OnEdge { oracle: ox, .. }, WorkItem::OnEdge { oracle: oy, .. }) => {
                    assert_eq!(ox, oy)
                }
                (WorkItem::Knn { oracle: ox, k, .. }, WorkItem::Knn { oracle: oy, .. }) => {
                    assert_eq!(ox, oy);
                    assert!(ox.len() <= *k);
                    assert!(ox.windows(2).all(|w| w[0] <= w[1]));
                }
                _ => panic!("workload kind order diverged"),
            }
        }
    }

    #[test]
    fn single_cell_runs_exact_on_lossless_nr() {
        let spec = ScenarioSpec::small("cell", 11);
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR]);
        let report = run_cell(&ctx, MethodId::NR);
        assert!(report.exact(), "mismatches: {}", report.mismatches);
        assert_eq!(
            report.queries,
            spec.workload.point_to_point + spec.workload.on_edge
        );
        assert!(report.tuning_packets > 0);
        assert!(report.radio_energy_joules > 0.0);
    }

    #[test]
    fn mem_bound_cell_is_exact_and_channel_free() {
        let mut spec = ScenarioSpec::small("mb", 5);
        spec.loss = LossSpec::Bernoulli { rate: 0.05 };
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR, MethodId::NR_MEM_BOUND]);
        let report = run_cell(&ctx, MethodId::NR_MEM_BOUND);
        assert!(report.exact(), "mismatches: {}", report.mismatches);
        assert_eq!(report.tuning_packets, 0, "no channel is simulated");
        assert!(report.peak_memory_bytes > 0);
    }

    #[test]
    fn mem_bound_runs_without_nr_in_the_method_list() {
        // The §6.1 runner's program embeds its own reference NR build, so
        // its cell reports NR's cycle length even when `nr` itself is not
        // requested — no hidden cross-method dependency.
        let spec = ScenarioSpec::small("mb-alone", 9);
        let m = run_matrix(&[spec], &[MethodId::NR_MEM_BOUND], 1);
        assert_eq!(m.cells.len(), 1);
        assert!(m.all_exact());
        assert!(m.cells[0].cycle_packets > 0);
    }

    #[test]
    fn mem_bound_has_no_air_cycle_but_reports_nrs() {
        // The "no own channel" capability is explicit: `cycle()` is a
        // typed error (no silent aliasing to NR), while the *report*
        // quotes NR's cycle length per the descriptor's reference_cycle.
        let spec = ScenarioSpec::small("mb-explicit", 13);
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR, MethodId::NR_MEM_BOUND]);
        assert!(matches!(
            ctx.cycle(MethodId::NR_MEM_BOUND),
            Err(MethodUnavailable::NoOwnChannel {
                method: "nr_mem_bound",
                reference: "nr",
            })
        ));
        assert!(matches!(
            ctx.client(MethodId::NR_MEM_BOUND),
            Err(MethodUnavailable::NotAirClient("nr_mem_bound"))
        ));
        assert_eq!(
            ctx.reported_cycle_packets(MethodId::NR_MEM_BOUND),
            ctx.cycle(MethodId::NR).unwrap().len(),
        );
    }

    #[test]
    fn unavailable_programs_surface_as_failed_cells_not_panics() {
        let spec = ScenarioSpec::small("missing", 17);
        let ctx = ScenarioContext::build(&spec, &[MethodId::NR]);
        assert!(matches!(
            ctx.cycle(MethodId::DJ),
            Err(MethodUnavailable::NotBuilt("dj"))
        ));
        let report = run_cell(&ctx, MethodId::DJ);
        assert!(!report.exact());
        assert_eq!(
            report.queries,
            spec.workload.point_to_point + spec.workload.on_edge
        );
        assert_eq!(report.mismatches, report.queries);
    }

    #[test]
    fn matrix_skips_cells_without_work() {
        let mut spec = ScenarioSpec::small("skip", 3);
        spec.workload = WorkloadMix::p2p(2);
        let m = run_matrix(&[spec], &[MethodId::DJ, MethodId::KNN_AIR], 1);
        assert_eq!(m.cells.len(), 1, "knn cell has no work and is skipped");
        assert_eq!(m.cells[0].method, "dj");
        assert!(m.all_exact());
    }
}
