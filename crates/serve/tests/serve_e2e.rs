//! End-to-end serving tests: a real daemon on a loopback socket, real
//! client sessions, answers compared against the in-process channel.

use spair_broadcast::{BroadcastChannel, LossModel};
use spair_core::query::Query;
use spair_core::BorderPrecomputation;
use spair_methods::{MethodRegistry, ProgramSet, World};
use spair_partition::KdTreePartition;
use spair_roadnet::generators::small_grid;
use spair_roadnet::QueuePolicy;
use spair_serve::client::{fetch_cycle, run_query, SessionConfig, SessionFailure, Transport};
use spair_serve::daemon::{DropPlan, ServeDaemon, ServeOptions, ServeWorld};
use spair_serve::frame::{encode_stream, Frame, Hello};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spair_serve_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk test dir");
    dir
}

fn build_programs(w: usize, h: usize, regions: usize, seed: u64) -> ProgramSet {
    let g = small_grid(w, h, seed);
    let part = KdTreePartition::build(&g, regions);
    let pre = BorderPrecomputation::run(&g, &part);
    ProgramSet::new(World::from_parts(g, part, pre))
}

fn start_daemon(
    programs: &ProgramSet,
    methods: &[&str],
    dir: &std::path::Path,
    drop_plan: Option<DropPlan>,
) -> ServeDaemon {
    let registry = MethodRegistry::standard();
    let ids: Vec<_> = methods
        .iter()
        .map(|n| registry.get(n).expect("known method"))
        .collect();
    let world = ServeWorld::from_program_set(programs, &ids);
    assert_eq!(world.channels().len(), methods.len());
    let opts = ServeOptions {
        drop_plan,
        ..ServeOptions::in_dir(dir)
    };
    ServeDaemon::start(world, opts).expect("daemon start")
}

/// The tentpole contract: for every served method and both transports,
/// an answer computed from a socket-delivered cycle is identical to the
/// answer from the in-process channel at the same tune-in offset.
#[test]
fn socket_answers_match_in_process() {
    let dir = test_dir("equiv");
    let programs = build_programs(8, 8, 8, 42);
    let methods = ["nr", "dj"];
    let daemon = start_daemon(&programs, &methods, &dir, None);
    let addr = daemon.local_addr();
    let registry = MethodRegistry::standard();

    let g = programs.world().g.clone();
    let queries = [
        Query::for_nodes(&g, 1, 62),
        Query::for_nodes(&g, 0, 63),
        Query::for_nodes(&g, 9, 54),
    ];

    for method in methods {
        let id = registry.get(method).unwrap();
        let program = programs.ensure(id);
        let cycle = program.cycle().expect("cycle");
        for transport in [Transport::Udp, Transport::Tcp] {
            for (qi, q) in queries.iter().enumerate() {
                let offset = (qi as u64) * 37;
                let mut config = SessionConfig::new(addr, method, transport);
                config.offset = offset;
                let (outcome, metrics) = run_query(&config, q).expect("socket query");

                let mut baseline_client = program.make_client(QueuePolicy::Heap).unwrap();
                let mut ch = BroadcastChannel::tune_in(
                    cycle,
                    (offset % cycle.len() as u64) as usize,
                    LossModel::Lossless,
                );
                let baseline = baseline_client.query(&mut ch, q).expect("baseline query");

                assert_eq!(
                    outcome.distance,
                    baseline.distance,
                    "{method}/{} distance mismatch",
                    transport.name()
                );
                assert_eq!(
                    outcome.path,
                    baseline.path,
                    "{method}/{} path mismatch",
                    transport.name()
                );
                assert_eq!(metrics.cycle_len, cycle.len() as u64);
            }
        }
    }

    let summary = daemon.shutdown().expect("shutdown");
    assert_eq!(summary.sessions, (methods.len() * 2 * queries.len()) as u64);
    assert_eq!(summary.evictions, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected datagram drops delay a UDP session (extra laps, observed
/// gaps) but never change its answer.
#[test]
fn udp_drops_delay_but_do_not_corrupt() {
    let dir = test_dir("drops");
    let programs = build_programs(8, 8, 8, 7);
    let daemon = start_daemon(
        &programs,
        &["nr"],
        &dir,
        Some(DropPlan {
            permille: 300,
            laps: 2,
        }),
    );
    let addr = daemon.local_addr();
    let g = programs.world().g.clone();
    let q = Query::for_nodes(&g, 2, 61);

    let config = SessionConfig::new(addr, "nr", Transport::Udp);
    let (outcome, metrics) = run_query(&config, &q).expect("lossy session completes");

    let registry = MethodRegistry::standard();
    let program = programs.ensure(registry.get("nr").unwrap());
    let cycle = program.cycle().unwrap();
    let mut baseline_client = program.make_client(QueuePolicy::Heap).unwrap();
    let mut ch = BroadcastChannel::lossless(cycle);
    let baseline = baseline_client.query(&mut ch, &q).unwrap();
    assert_eq!(outcome.distance, baseline.distance);
    assert_eq!(outcome.path, baseline.path);
    // The drop plan must actually have bitten (30% over two laps).
    assert!(
        metrics.frames_rx > metrics.cycle_len,
        "healing laps expected"
    );

    let summary = daemon.shutdown().unwrap();
    assert!(summary.injected_drops > 0, "drop plan never fired");
    std::fs::remove_dir_all(&dir).ok();
}

/// Unknown methods are refused with a typed reason, and garbage instead
/// of a Hello lands in the dead-letter file without touching daemon
/// state.
#[test]
fn rejections_and_dead_letters_are_typed() {
    let dir = test_dir("reject");
    let programs = build_programs(6, 6, 4, 3);
    let daemon = start_daemon(&programs, &["nr"], &dir, None);
    let addr = daemon.local_addr();

    // Unknown method name.
    let config = SessionConfig::new(addr, "no_such_method", Transport::Tcp);
    match fetch_cycle(&config) {
        Err(SessionFailure::Rejected(_)) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
    // Served registry method that this daemon does not carry.
    let config = SessionConfig::new(addr, "dj", Transport::Tcp);
    match fetch_cycle(&config) {
        Err(SessionFailure::Rejected(_)) => {}
        other => panic!("expected rejection, got {other:?}"),
    }

    // Garbage instead of a Hello: dead-lettered, connection refused.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&[0u8; 2]).unwrap(); // length prefix 0 → poisons stream
    raw.write_all(b"not a frame at all").unwrap();
    let mut buf = Vec::new();
    let _ = raw.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = raw.read_to_end(&mut buf); // daemon replies Reject and closes

    // A valid-looking stream carrying a non-Hello frame is also refused.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&encode_stream(&Frame::Hello(Hello {
        method: "nr".into(),
        transport: 7, // invalid transport tag → decode error
        udp_port: 0,
        offset: 0,
    })))
    .ok();
    let _ = raw.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf);

    let summary = daemon.shutdown().unwrap();
    assert!(
        summary.rejections >= 3,
        "rejections: {}",
        summary.rejections
    );
    assert!(
        summary.dead_letters >= 1,
        "dead letters: {}",
        summary.dead_letters
    );
    let dead = std::fs::read_to_string(dir.join("serve.deadletter.jsonl")).unwrap();
    assert!(dead.contains("\"event\":\"dead_letter\""));
    std::fs::remove_dir_all(&dir).ok();
}

/// A consumer that stops draining its TCP stream is evicted once the
/// write stall exceeds the configured window.
#[test]
fn slow_tcp_consumer_is_evicted() {
    let dir = test_dir("evict");
    let programs = build_programs(8, 8, 8, 11);
    let registry = MethodRegistry::standard();
    let world = ServeWorld::from_program_set(&programs, &[registry.get("nr").unwrap()]);
    let opts = ServeOptions {
        stall: Duration::from_millis(200),
        max_laps: 100_000, // keep writing until the buffers burst
        lap_pause: Duration::ZERO,
        ..ServeOptions::in_dir(&dir)
    };
    let daemon = ServeDaemon::start(world, opts).expect("daemon start");
    let addr = daemon.local_addr();

    // Handshake, then never read again: the kernel buffers fill, the
    // daemon's write stalls past 200ms, and the session is evicted.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&encode_stream(&Frame::Hello(Hello {
        method: "nr".into(),
        transport: 0,
        udp_port: 0,
        offset: 0,
    })))
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let evicted = loop {
        assert!(
            std::time::Instant::now() < deadline,
            "eviction never happened"
        );
        let events = std::fs::read_to_string(dir.join("serve.events.jsonl")).unwrap_or_default();
        if events.contains("client_evicted") {
            break true;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(evicted);
    drop(raw);

    let summary = daemon.shutdown().unwrap();
    assert_eq!(summary.evictions, 1);
    let events = std::fs::read_to_string(dir.join("serve.events.jsonl")).unwrap();
    assert!(events.contains("\"event\":\"client_evicted\""));
    assert!(events.contains("\"reason\":\"evicted_slow\""));
    std::fs::remove_dir_all(&dir).ok();
}

/// `kill -INT` on the daemon binary ends the cycle loop, closes
/// sessions with a typed reason, and flushes the event log before exit.
#[test]
fn sigint_shuts_the_daemon_down_cleanly() {
    let dir = test_dir("sigint");
    let events = dir.join("events.jsonl");
    let dead = dir.join("dead.jsonl");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_serve_daemon"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--grid",
            "6",
            "6",
            "--regions",
            "4",
            "--methods",
            "nr",
        ])
        .arg("--events")
        .arg(&events)
        .arg("--dead-letter")
        .arg(&dead)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    // Wait for the listening line (the daemon is up and serving).
    let mut stdout = child.stdout.take().expect("stdout");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while byte[0] != b'\n' {
        stdout.read_exact(&mut byte).expect("daemon died early");
        line.push(byte[0]);
    }
    let line = String::from_utf8(line).unwrap();
    let addr: std::net::SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("listening line")
        .parse()
        .expect("addr");

    // One real session against the spawned process.
    let config = SessionConfig::new(addr, "nr", Transport::Tcp);
    let (cycle, _boot, _m) = fetch_cycle(&config).expect("fetch over spawned daemon");
    assert!(!cycle.is_empty());

    let pid = child.id().to_string();
    let status = std::process::Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("send SIGINT");
    assert!(status.success());

    let exit = child.wait().expect("daemon exit");
    assert!(exit.success(), "daemon exited {exit:?}");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(
        rest.contains("stopped sessions=1"),
        "summary line: {rest:?}"
    );

    let text = std::fs::read_to_string(&events).expect("event log flushed");
    assert!(text.contains("\"event\":\"daemon_started\""));
    assert!(text.contains("\"event\":\"session_admitted\""));
    assert!(text.contains("\"event\":\"daemon_stopped\""));
    // Every line is complete (the flush+fsync path ran).
    for l in text.lines() {
        assert!(l.starts_with('{') && l.ends_with('}'), "torn line {l:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
