//! Panic audit at the socket boundary: whatever bytes arrive — random,
//! truncated, corrupted, duplicated, reordered, rechunked — the frame
//! layer either produces a frame or a typed [`FrameError`]. It never
//! panics and never half-ingests.

use proptest::prelude::*;
use spair_serve::frame::{
    self, decode, encode, encode_stream, Close, CloseReason, Frame, Hello, StreamDecoder,
};

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            proptest::collection::vec(b'a'..=b'z', 0..24)
                .prop_map(|v| String::from_utf8(v).unwrap()),
            0u8..=1,
            any::<u16>(),
            any::<u64>()
        )
            .prop_map(|(method, transport, udp_port, offset)| {
                Frame::Hello(Hello {
                    method,
                    transport,
                    udp_port,
                    offset,
                })
            }),
        (any::<u32>(), 0u8..=4, any::<u64>(), any::<u32>()).prop_map(
            |(session, reason, drops, laps)| {
                Frame::Close(Close {
                    session,
                    reason: CloseReason::from_u8(reason).unwrap(),
                    drops,
                    laps,
                })
            }
        ),
        (0u8..=3).prop_map(|r| Frame::Reject(frame::RejectReason::from_u8(r))),
    ]
}

proptest! {
    /// Arbitrary datagrams never panic the decoder; every outcome is a
    /// frame or a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        match decode(&bytes) {
            Ok(_) | Err(_) => {}
        }
    }

    /// Valid frames round-trip; any strict prefix (a truncated
    /// datagram) is a typed error, never a misparse.
    #[test]
    fn truncation_is_typed(f in arb_frame(), cut in 0usize..100) {
        let body = encode(&f);
        prop_assert!(decode(&body).is_ok());
        if cut > 0 && cut <= body.len() {
            let truncated = &body[..body.len() - cut.min(body.len())];
            if truncated.len() < body.len() {
                prop_assert!(decode(truncated).is_err(), "truncated frame decoded");
            }
        }
    }

    /// Single-byte corruption anywhere in the body is caught (by the
    /// CRC tail, or by a bounds check before it).
    #[test]
    fn corruption_is_typed(f in arb_frame(), pos in 0usize..200, flip in 1u8..=255) {
        let mut body = encode(&f);
        let n = body.len();
        body[pos % n] ^= flip;
        prop_assert!(decode(&body).is_err(), "corrupted frame decoded");
    }

    /// A TCP stream of valid frames reassembles identically no matter
    /// how the bytes are chunked, and duplicated frames simply appear
    /// twice — no state is torn across chunk boundaries.
    #[test]
    fn stream_chunking_is_invisible(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        dup in any::<bool>(),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_stream(f));
            if dup {
                wire.extend_from_slice(&encode_stream(f));
            }
        }
        let mut dec = StreamDecoder::new();
        let mut out = 0usize;
        for c in wire.chunks(chunk) {
            dec.push(c);
            while let Some(_f) = dec.next_frame().expect("valid stream") {
                out += 1;
            }
        }
        prop_assert_eq!(out, frames.len() * if dup { 2 } else { 1 });
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Garbage on the stream surfaces as a typed error and poisons the
    /// decoder — it never panics and never resynchronizes by guessing.
    #[test]
    fn stream_garbage_is_typed(bytes in proptest::collection::vec(any::<u8>(), 2..512)) {
        let mut dec = StreamDecoder::new();
        dec.push(&bytes);
        let mut first_err = None;
        for _ in 0..bytes.len() + 1 {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => { first_err = Some(e); break; }
            }
        }
        if first_err.is_some() {
            // Poisoned: even a valid frame afterwards is refused.
            dec.push(&encode_stream(&Frame::Reject(frame::RejectReason::Protocol)));
            prop_assert!(dec.next_frame().is_err());
        }
    }

    /// Reordered delivery across two sessions' datagrams decodes every
    /// datagram independently — UDP frames carry no inter-frame state.
    #[test]
    fn datagram_reordering_is_harmless(frames in proptest::collection::vec(arb_frame(), 2..10), rot in 0usize..10) {
        let mut bodies: Vec<Vec<u8>> = frames.iter().map(encode).collect();
        let n = bodies.len();
        bodies.rotate_left(rot % n);
        for b in &bodies {
            prop_assert!(decode(b).is_ok());
        }
    }
}
