//! SIGINT/SIGTERM → a process-wide shutdown flag.
//!
//! The bins used to just die mid-write on ctrl-c; the daemon instead
//! turns the signal into an [`AtomicBool`] its loops poll, so sessions
//! close with a typed reason and the event log is flushed and fsynced
//! before exit. The build is fully offline (no `libc` crate is
//! vendored), so handler registration goes through a minimal local
//! `extern "C"` declaration of POSIX `signal(2)` — the crate's only
//! `unsafe`, scoped to this module and compiled on Unix targets only.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been observed.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically (tests; supervisor stop paths).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // A relaxed atomic store is async-signal-safe; everything else
        // (logging, flushing) happens on the main loop after polling.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag() {
        // No pristine-state assertion: other tests in the process may
        // already have raised the flag (it is process-wide by design).
        request_shutdown();
        assert!(shutdown_requested());
    }
}
