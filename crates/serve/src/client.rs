//! The client side: tune in to a running daemon over a real socket,
//! collect one full cycle, rebuild it, and answer queries with the
//! registry's unmodified method clients.
//!
//! The client keeps a slot table of `cycle_len` entries. Every data
//! frame carries an absolute slot number; `slot % cycle_len` is its
//! table position, so a datagram lost on one lap is simply filled by
//! the same position on a later lap. Drops therefore only ever *delay*
//! a session (more laps listened), never change its answer — once the
//! table is full the rebuilt [`BroadcastCycle`] is byte-identical to
//! the one the daemon serves, and the digest of any query run over it
//! matches the in-process run exactly.

use crate::frame::{
    self, Close, CloseReason, Frame, FrameError, Hello, RejectReason, StreamDecoder,
};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, LossModel, Packet};
use spair_core::query::{Query, QueryOutcome};
use spair_methods::{ClientBootstrap, MethodRegistry};
use spair_roadnet::QueuePolicy;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

/// Which transport carries the data frames (admission is always TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Length-prefixed frames on the control connection itself.
    Tcp,
    /// One CRC-framed datagram per packet to the client's UDP port.
    Udp,
}

impl Transport {
    /// Stable name for logs and bench cells.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Tcp => "tcp",
            Transport::Udp => "udp",
        }
    }

    fn wire(self) -> u8 {
        match self {
            Transport::Tcp => 0,
            Transport::Udp => 1,
        }
    }
}

/// One tune-in session's parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Registry method name (`"nr"`, `"dj"`, ...).
    pub method: String,
    /// Data transport.
    pub transport: Transport,
    /// Absolute tune-in offset (the session's position in the cycle).
    pub offset: u64,
    /// Priority-queue policy for the rebuilt client.
    pub queue: QueuePolicy,
    /// Overall deadline for collecting the cycle.
    pub max_wait: Duration,
    /// Artificial per-frame processing pause — the slow-consumer
    /// injection knob for contention cells. Zero for honest clients.
    pub frame_pause: Duration,
}

impl SessionConfig {
    /// An honest lossless session for `method` over `transport`.
    pub fn new(addr: SocketAddr, method: &str, transport: Transport) -> Self {
        Self {
            addr,
            method: method.to_string(),
            transport,
            offset: 0,
            queue: QueuePolicy::Heap,
            max_wait: Duration::from_secs(30),
            frame_pause: Duration::ZERO,
        }
    }
}

/// What the client measured while collecting the cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionMetrics {
    /// Session id the daemon assigned.
    pub session: u32,
    /// Microseconds from connect to the `Admit` frame.
    pub admission_us: u64,
    /// Cycle length in packets.
    pub cycle_len: u64,
    /// Data frames received (including duplicates).
    pub frames_rx: u64,
    /// Frames for an already-filled slot.
    pub dups: u64,
    /// Gaps observed in the absolute slot sequence (UDP loss as seen
    /// from the receiver).
    pub observed_drops: u64,
    /// Undecodable datagrams skipped (UDP only; each is typed and
    /// counted, never ingested).
    pub bad_frames: u64,
    /// Laps listened until the table filled.
    pub laps: u32,
}

/// Why a session did not produce a cycle.
#[derive(Debug)]
pub enum SessionFailure {
    /// The daemon refused admission.
    Rejected(RejectReason),
    /// The daemon evicted this client as a slow consumer.
    Evicted,
    /// The daemon shut down mid-session.
    DaemonShutdown,
    /// The daemon's lap budget ran out before the table filled.
    Expired,
    /// `max_wait` elapsed before the table filled.
    Timeout,
    /// The TCP stream produced an undecodable frame (fatal on a
    /// reliable transport — it means a protocol bug, not loss).
    Frame(FrameError),
    /// Socket-level failure.
    Io(String),
    /// The rebuilt client could not be constructed or errored.
    Query(String),
}

impl std::fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionFailure::Rejected(r) => write!(f, "admission rejected ({r:?})"),
            SessionFailure::Evicted => write!(f, "evicted as slow consumer"),
            SessionFailure::DaemonShutdown => write!(f, "daemon shut down"),
            SessionFailure::Expired => write!(f, "session expired before cycle completed"),
            SessionFailure::Timeout => write!(f, "deadline elapsed before cycle completed"),
            SessionFailure::Frame(e) => write!(f, "stream framing error: {e}"),
            SessionFailure::Io(e) => write!(f, "socket error: {e}"),
            SessionFailure::Query(e) => write!(f, "client error: {e}"),
        }
    }
}

impl std::error::Error for SessionFailure {}

impl From<std::io::Error> for SessionFailure {
    fn from(e: std::io::Error) -> Self {
        SessionFailure::Io(e.to_string())
    }
}

fn close_to_failure(reason: CloseReason) -> SessionFailure {
    match reason {
        CloseReason::EvictedSlowConsumer => SessionFailure::Evicted,
        CloseReason::DaemonShutdown => SessionFailure::DaemonShutdown,
        CloseReason::Expired => SessionFailure::Expired,
        CloseReason::Done | CloseReason::ProtocolError => {
            SessionFailure::Query("server closed before cycle completed".into())
        }
    }
}

/// Tracks receive-side slot accounting: table fill, duplicates, and the
/// gap count that surfaces datagram loss to metrics.
struct SlotTable {
    slots: Vec<Option<Packet>>,
    filled: usize,
    next_expected: Option<u64>,
}

impl SlotTable {
    fn new(cycle_len: u64) -> Self {
        Self {
            slots: vec![None; cycle_len as usize],
            filled: 0,
            next_expected: None,
        }
    }

    fn ingest(&mut self, slot: u64, packet: Packet, m: &mut SessionMetrics) {
        m.frames_rx += 1;
        if let Some(exp) = self.next_expected {
            if slot > exp {
                m.observed_drops += slot - exp;
            }
        }
        self.next_expected = Some(slot + 1);
        let pos = (slot % self.slots.len() as u64) as usize;
        if self.slots[pos].is_some() {
            m.dups += 1;
        } else {
            self.slots[pos] = Some(packet);
            self.filled += 1;
        }
    }

    fn complete(&self) -> bool {
        self.filled == self.slots.len()
    }

    fn into_cycle(self) -> BroadcastCycle {
        BroadcastCycle::from_packets(
            self.slots
                .into_iter()
                .map(|p| p.expect("table complete"))
                .collect(),
        )
    }
}

fn send_done(control: &mut TcpStream, session: u32, m: &SessionMetrics) {
    let _ = control.write_all(&frame::encode_stream(&Frame::Close(Close {
        session,
        reason: CloseReason::Done,
        drops: m.observed_drops,
        laps: m.laps,
    })));
    let _ = control.flush();
}

/// Blocking-with-timeout read of the next frame off the control stream.
fn next_control_frame(
    stream: &mut TcpStream,
    dec: &mut StreamDecoder,
    deadline: Instant,
) -> Result<Frame, SessionFailure> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(f) = dec.next_frame().map_err(SessionFailure::Frame)? {
            return Ok(f);
        }
        if Instant::now() > deadline {
            return Err(SessionFailure::Timeout);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(SessionFailure::Io("connection closed".into())),
            Ok(n) => dec.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Tunes in, collects one full cycle, closes the session, and returns
/// the rebuilt cycle with its bootstrap and metrics.
pub fn fetch_cycle(
    config: &SessionConfig,
) -> Result<(BroadcastCycle, ClientBootstrap, SessionMetrics), SessionFailure> {
    let started = Instant::now();
    let deadline = started + config.max_wait;
    let udp = match config.transport {
        Transport::Udp => {
            let s = UdpSocket::bind("127.0.0.1:0")?;
            s.set_read_timeout(Some(Duration::from_millis(100)))?;
            Some(s)
        }
        Transport::Tcp => None,
    };
    let udp_port = udp
        .as_ref()
        .map(|s| s.local_addr().map(|a| a.port()))
        .transpose()?
        .unwrap_or(0);

    let mut control = TcpStream::connect_timeout(&config.addr, config.max_wait)?;
    control.set_nodelay(true)?;
    control.set_read_timeout(Some(Duration::from_millis(100)))?;
    control.write_all(&frame::encode_stream(&Frame::Hello(Hello {
        method: config.method.clone(),
        transport: config.transport.wire(),
        udp_port,
        offset: config.offset,
    })))?;

    let mut dec = StreamDecoder::new();
    let (session, cycle_len, bootstrap) =
        match next_control_frame(&mut control, &mut dec, deadline)? {
            Frame::Admit(a) => (a.session, a.cycle_len, a.bootstrap),
            Frame::Reject(r) => return Err(SessionFailure::Rejected(r)),
            Frame::Close(c) => return Err(close_to_failure(c.reason)),
            _ => return Err(SessionFailure::Frame(FrameError::UnknownKind(0xFE))),
        };
    if cycle_len == 0 {
        return Err(SessionFailure::Query(
            "daemon advertised empty cycle".into(),
        ));
    }
    let mut metrics = SessionMetrics {
        session,
        admission_us: started.elapsed().as_micros() as u64,
        cycle_len,
        ..SessionMetrics::default()
    };
    let mut table = SlotTable::new(cycle_len);

    match udp {
        None => collect_tcp(
            &mut control,
            &mut dec,
            deadline,
            config,
            &mut table,
            &mut metrics,
        )?,
        Some(sock) => collect_udp(
            &mut control,
            &mut dec,
            &sock,
            deadline,
            config,
            &mut table,
            &mut metrics,
        )?,
    }

    metrics.laps = (metrics.frames_rx / cycle_len.max(1)) as u32 + 1;
    send_done(&mut control, session, &metrics);
    Ok((table.into_cycle(), bootstrap, metrics))
}

fn collect_tcp(
    control: &mut TcpStream,
    dec: &mut StreamDecoder,
    deadline: Instant,
    config: &SessionConfig,
    table: &mut SlotTable,
    metrics: &mut SessionMetrics,
) -> Result<(), SessionFailure> {
    while !table.complete() {
        match next_control_frame(control, dec, deadline)? {
            Frame::Data(d) => {
                table.ingest(d.slot, d.packet, metrics);
                if !config.frame_pause.is_zero() {
                    std::thread::sleep(config.frame_pause);
                }
            }
            Frame::Close(c) => return Err(close_to_failure(c.reason)),
            _ => return Err(SessionFailure::Frame(FrameError::UnknownKind(0xFE))),
        }
    }
    Ok(())
}

fn collect_udp(
    control: &mut TcpStream,
    dec: &mut StreamDecoder,
    sock: &UdpSocket,
    deadline: Instant,
    config: &SessionConfig,
    table: &mut SlotTable,
    metrics: &mut SessionMetrics,
) -> Result<(), SessionFailure> {
    // The control connection turns nonblocking: we only poll it for a
    // daemon-initiated Close while datagrams stream on the UDP socket.
    control.set_nonblocking(true)?;
    let mut dgram = [0u8; frame::MAX_FRAME];
    while !table.complete() {
        if Instant::now() > deadline {
            control.set_nonblocking(false)?;
            return Err(SessionFailure::Timeout);
        }
        match sock.recv_from(&mut dgram) {
            Ok((n, _peer)) => match frame::decode(&dgram[..n]) {
                Ok(Frame::Data(d)) => {
                    table.ingest(d.slot, d.packet, metrics);
                    if !config.frame_pause.is_zero() {
                        std::thread::sleep(config.frame_pause);
                    }
                }
                Ok(_) => metrics.bad_frames += 1,
                Err(_) => {
                    // A corrupt datagram is indistinguishable from line
                    // noise: typed, counted, skipped — the slot heals on
                    // a later lap.
                    metrics.bad_frames += 1;
                }
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => {
                control.set_nonblocking(false)?;
                return Err(e.into());
            }
        }
        // Drain any control-plane Close.
        let mut cbuf = [0u8; 1024];
        loop {
            match control.read(&mut cbuf) {
                Ok(0) => break,
                Ok(n) => dec.push(&cbuf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        while let Some(f) = dec.next_frame().map_err(SessionFailure::Frame)? {
            if let Frame::Close(c) = f {
                control.set_nonblocking(false)?;
                return Err(close_to_failure(c.reason));
            }
        }
    }
    control.set_nonblocking(false)?;
    Ok(())
}

/// Fetches the cycle and answers one query with the registry's remote
/// client — end to end over the socket, byte-identical to an in-process
/// run once the table fills.
pub fn run_query(
    config: &SessionConfig,
    query: &Query,
) -> Result<(QueryOutcome, SessionMetrics), SessionFailure> {
    let (cycle, bootstrap, metrics) = fetch_cycle(config)?;
    let registry = MethodRegistry::standard();
    let id = registry
        .get(&config.method)
        .map_err(|e| SessionFailure::Query(e.to_string()))?;
    let mut client = registry
        .remote_client(id, &bootstrap, config.queue)
        .map_err(|e| SessionFailure::Query(e.to_string()))?;
    let mut channel = BroadcastChannel::tune_in(
        &cycle,
        (config.offset % metrics.cycle_len) as usize,
        LossModel::Lossless,
    );
    let outcome = client
        .query(&mut channel, query)
        .map_err(|e| SessionFailure::Query(e.to_string()))?;
    Ok((outcome, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::new(spair_broadcast::PacketKind::Data, 0, bytes::Bytes::new())
    }

    #[test]
    fn slot_table_wraps_heals_and_counts() {
        let mut m = SessionMetrics::default();
        let mut t = SlotTable::new(4);
        // Lap 0 with slot 2 lost; lap 1 redelivers it.
        for slot in [0u64, 1, 3] {
            t.ingest(slot, pkt(), &mut m);
        }
        assert_eq!(m.observed_drops, 1);
        assert!(!t.complete());
        for slot in [4u64, 5, 6] {
            t.ingest(slot, pkt(), &mut m);
        }
        assert!(t.complete());
        assert_eq!(m.dups, 2); // slots 4 and 5 duplicate 0 and 1
        assert_eq!(m.frames_rx, 6);
    }

    #[test]
    fn transport_names_are_stable() {
        assert_eq!(Transport::Tcp.name(), "tcp");
        assert_eq!(Transport::Udp.name(), "udp");
        assert_eq!(Transport::Tcp.wire(), 0);
        assert_eq!(Transport::Udp.wire(), 1);
    }
}
