//! The wire format: one frame codec for both loopback transports.
//!
//! A *frame body* is the same byte sequence everywhere; the transports
//! differ only in delimiting. UDP sends one body per datagram (the
//! datagram length *is* the frame length); TCP prefixes each body with
//! a little-endian `u16` length ([`StreamDecoder`] reassembles frames
//! from arbitrary chunk boundaries).
//!
//! ```text
//! 0..2   magic  "SP"
//! 2      version (1)
//! 3      kind
//! 4..    kind-specific fields
//! tail   CRC-32 (LE) over everything before it
//! ```
//!
//! The CRC is [`spair_broadcast::packet::crc32`] — the same IEEE 802.3
//! polynomial the 128-byte packet images are checked with, so the data
//! plane is covered end to end by one error model. Decoding is total:
//! every way a frame can be wrong maps to a typed [`FrameError`]; no
//! input slice panics, and no frame is ever half-applied.

use spair_broadcast::packet::{crc32, Packet, PACKET_SIZE, PAYLOAD_CAPACITY};
use spair_methods::ClientBootstrap;
use spair_roadnet::{Point, QueuePolicy};

/// Frame magic: `"SP"`.
pub const MAGIC: [u8; 2] = *b"SP";

/// Wire protocol version.
pub const VERSION: u8 = 1;

/// Smallest well-formed frame body (header + CRC).
pub const MIN_FRAME: usize = 4 + 4;

/// Largest well-formed frame body (a Hello with a maximal method name
/// still fits; the data frame is 150 bytes).
pub const MAX_FRAME: usize = 512;

/// Why a byte sequence is not a frame. Every variant is a *diagnosis*:
/// the serving daemon dead-letters the offending bytes under it and the
/// proptests in `tests/frame_props.rs` assert the taxonomy is total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the minimal header + CRC.
    TooShort(usize),
    /// Longer than any defined frame.
    Oversized(usize),
    /// First two bytes are not `"SP"`.
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// The CRC tail does not match the body.
    BadCrc,
    /// A field extends past the end of the body.
    Truncated,
    /// Bytes remain after the last field of the frame.
    Trailing(usize),
    /// A data frame declares a payload longer than a packet holds.
    BadPayloadLen(u16),
    /// The embedded 128-byte packet image has an unknown packet kind.
    BadPacket,
    /// A method name is not valid UTF-8.
    BadText,
    /// Unknown transport tag in a Hello.
    BadTransport(u8),
    /// Unknown queue-policy tag in a Hello.
    BadQueue(u8),
    /// An enum-valued field carries an undefined tag.
    BadTag(u8),
    /// A `u16` length prefix on the stream is outside frame bounds —
    /// the stream is poisoned and must be closed.
    BadStreamLength(u16),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort(n) => write!(f, "frame too short ({n} bytes)"),
            FrameError::Oversized(n) => write!(f, "frame too long ({n} bytes)"),
            FrameError::BadMagic => f.write_str("bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadCrc => f.write_str("frame CRC mismatch"),
            FrameError::Truncated => f.write_str("frame field truncated"),
            FrameError::Trailing(n) => write!(f, "{n} trailing bytes after frame"),
            FrameError::BadPayloadLen(n) => write!(f, "payload length {n} exceeds capacity"),
            FrameError::BadPacket => f.write_str("embedded packet image undecodable"),
            FrameError::BadText => f.write_str("method name is not UTF-8"),
            FrameError::BadTransport(t) => write!(f, "unknown transport tag {t}"),
            FrameError::BadQueue(q) => write!(f, "unknown queue tag {q}"),
            FrameError::BadTag(t) => write!(f, "undefined field tag {t}"),
            FrameError::BadStreamLength(n) => write!(f, "stream length prefix {n} out of bounds"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Stable machine tag for dead-letter entries.
    pub fn tag(&self) -> &'static str {
        match self {
            FrameError::TooShort(_) => "too_short",
            FrameError::Oversized(_) => "oversized",
            FrameError::BadMagic => "bad_magic",
            FrameError::BadVersion(_) => "bad_version",
            FrameError::UnknownKind(_) => "unknown_kind",
            FrameError::BadCrc => "bad_crc",
            FrameError::Truncated => "truncated",
            FrameError::Trailing(_) => "trailing",
            FrameError::BadPayloadLen(_) => "bad_payload_len",
            FrameError::BadPacket => "bad_packet",
            FrameError::BadText => "bad_text",
            FrameError::BadTransport(_) => "bad_transport",
            FrameError::BadQueue(_) => "bad_queue",
            FrameError::BadTag(_) => "bad_tag",
            FrameError::BadStreamLength(_) => "bad_stream_length",
        }
    }
}

/// Why an admission request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// No registered method has the requested name.
    UnknownMethod = 0,
    /// The method exists but is not served (no cycle / not an air
    /// client).
    NotServed = 1,
    /// The daemon is shutting down.
    ShuttingDown = 2,
    /// The Hello itself was malformed.
    Protocol = 3,
}

impl RejectReason {
    /// Parses the wire tag (unknown tags collapse to `Protocol`, which
    /// is already "something is wrong on the other side").
    pub fn from_u8(b: u8) -> Self {
        match b {
            0 => RejectReason::UnknownMethod,
            1 => RejectReason::NotServed,
            2 => RejectReason::ShuttingDown,
            _ => RejectReason::Protocol,
        }
    }
}

/// Why a session ended — the typed reason both peers log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CloseReason {
    /// The client completed its download and hung up.
    Done = 0,
    /// The daemon evicted a slow consumer (backpressure).
    EvictedSlowConsumer = 1,
    /// The daemon is shutting down (SIGINT / supervisor stop).
    DaemonShutdown = 2,
    /// The peer violated the protocol.
    ProtocolError = 3,
    /// The daemon streamed its lap budget without the client closing.
    Expired = 4,
}

impl CloseReason {
    /// Parses the wire tag.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(CloseReason::Done),
            1 => Some(CloseReason::EvictedSlowConsumer),
            2 => Some(CloseReason::DaemonShutdown),
            3 => Some(CloseReason::ProtocolError),
            4 => Some(CloseReason::Expired),
            _ => None,
        }
    }

    /// Stable label for event-log lines.
    pub fn label(&self) -> &'static str {
        match self {
            CloseReason::Done => "done",
            CloseReason::EvictedSlowConsumer => "evicted_slow",
            CloseReason::DaemonShutdown => "daemon_shutdown",
            CloseReason::ProtocolError => "protocol_error",
            CloseReason::Expired => "expired",
        }
    }
}

/// A client's admission request.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Registry name of the method whose cycle to stream.
    pub method: String,
    /// 0 = data on this TCP connection, 1 = data as UDP datagrams.
    pub transport: u8,
    /// Where the client listens for datagrams (UDP transport only).
    pub udp_port: u16,
    /// Requested tune-in offset (absolute slot numbering starts here).
    pub offset: u64,
}

/// The daemon's admission reply: the session handle, the cycle length
/// and the method's a-priori client bootstrap blob.
#[derive(Debug, Clone, PartialEq)]
pub struct Admit {
    /// Session id (echoed in every data frame).
    pub session: u32,
    /// Packets per cycle.
    pub cycle_len: u64,
    /// The method's [`ClientBootstrap`].
    pub bootstrap: ClientBootstrap,
}

/// One cycle packet on the wire.
#[derive(Debug, Clone)]
pub struct DataFrame {
    /// Session the frame belongs to.
    pub session: u32,
    /// Absolute slot number (cycle position = `slot % cycle_len`).
    pub slot: u64,
    /// The decoded packet.
    pub packet: Packet,
}

/// A typed session termination, flowing either direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Close {
    /// Session being closed.
    pub session: u32,
    /// Why.
    pub reason: CloseReason,
    /// Client-observed datagram gaps (0 from the server side).
    pub drops: u64,
    /// Laps the client listened through (0 from the server side).
    pub laps: u32,
}

/// Every frame the protocol defines.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Admission request (client → daemon).
    Hello(Hello),
    /// Admission reply (daemon → client).
    Admit(Admit),
    /// Admission refusal (daemon → client).
    Reject(RejectReason),
    /// One cycle packet (daemon → client).
    Data(DataFrame),
    /// Typed session termination (either direction).
    Close(Close),
}

const KIND_HELLO: u8 = 0;
const KIND_ADMIT: u8 = 1;
const KIND_REJECT: u8 = 2;
const KIND_DATA: u8 = 3;
const KIND_CLOSE: u8 = 4;

/// Bounds-checked little-endian reader over a frame body.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.i + n > self.b.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(FrameError::Trailing(self.b.len() - self.i))
        }
    }
}

fn body_shell(kind: u8) -> Vec<u8> {
    let mut v = Vec::with_capacity(MIN_FRAME + PACKET_SIZE + 16);
    v.extend_from_slice(&MAGIC);
    v.push(VERSION);
    v.push(kind);
    v
}

fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let c = crc32(&body);
    body.extend_from_slice(&c.to_le_bytes());
    debug_assert!(body.len() <= MAX_FRAME);
    body
}

/// Encodes a frame body (one UDP datagram).
pub fn encode(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Hello(h) => {
            let mut b = body_shell(KIND_HELLO);
            let name = h.method.as_bytes();
            assert!(name.len() <= u8::MAX as usize, "method name too long");
            b.push(name.len() as u8);
            b.extend_from_slice(name);
            b.push(h.transport);
            b.extend_from_slice(&h.udp_port.to_le_bytes());
            b.extend_from_slice(&h.offset.to_le_bytes());
            seal(b)
        }
        Frame::Admit(a) => {
            let mut b = body_shell(KIND_ADMIT);
            b.extend_from_slice(&a.session.to_le_bytes());
            b.extend_from_slice(&a.cycle_len.to_le_bytes());
            b.extend_from_slice(&(a.bootstrap.num_regions as u32).to_le_bytes());
            match a.bootstrap.bbox {
                None => b.push(0),
                Some((lo, hi)) => {
                    b.push(1);
                    for v in [lo.x, lo.y, hi.x, hi.y] {
                        b.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
            seal(b)
        }
        Frame::Reject(r) => {
            let mut b = body_shell(KIND_REJECT);
            b.push(*r as u8);
            seal(b)
        }
        Frame::Data(d) => {
            let mut b = body_shell(KIND_DATA);
            b.extend_from_slice(&d.session.to_le_bytes());
            b.extend_from_slice(&d.slot.to_le_bytes());
            b.extend_from_slice(&(d.packet.payload().len() as u16).to_le_bytes());
            b.extend_from_slice(&d.packet.to_wire());
            seal(b)
        }
        Frame::Close(c) => {
            let mut b = body_shell(KIND_CLOSE);
            b.extend_from_slice(&c.session.to_le_bytes());
            b.push(c.reason as u8);
            b.extend_from_slice(&c.drops.to_le_bytes());
            b.extend_from_slice(&c.laps.to_le_bytes());
            seal(b)
        }
    }
}

/// Encodes a frame for the TCP stream (length prefix + body).
pub fn encode_stream(frame: &Frame) -> Vec<u8> {
    let body = encode(frame);
    let mut out = Vec::with_capacity(2 + body.len());
    out.extend_from_slice(&(body.len() as u16).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes one frame body (one UDP datagram). Total: every input is
/// either a frame or a typed error.
pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
    if body.len() < MIN_FRAME {
        return Err(FrameError::TooShort(body.len()));
    }
    if body.len() > MAX_FRAME {
        return Err(FrameError::Oversized(body.len()));
    }
    let (payload, tail) = body.split_at(body.len() - 4);
    let crc = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    if payload[0..2] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if payload[2] != VERSION {
        return Err(FrameError::BadVersion(payload[2]));
    }
    let kind = payload[3];
    let mut cur = Cur { b: payload, i: 4 };
    let frame = match kind {
        KIND_HELLO => {
            let n = cur.u8()? as usize;
            let name = cur.take(n)?;
            let method = std::str::from_utf8(name)
                .map_err(|_| FrameError::BadText)?
                .to_string();
            let transport = cur.u8()?;
            if transport > 1 {
                return Err(FrameError::BadTransport(transport));
            }
            let udp_port = cur.u16()?;
            let offset = cur.u64()?;
            Frame::Hello(Hello {
                method,
                transport,
                udp_port,
                offset,
            })
        }
        KIND_ADMIT => {
            let session = cur.u32()?;
            let cycle_len = cur.u64()?;
            let num_regions = cur.u32()? as usize;
            let bbox = match cur.u8()? {
                0 => None,
                1 => {
                    let (x0, y0, x1, y1) = (cur.f64()?, cur.f64()?, cur.f64()?, cur.f64()?);
                    Some((Point::new(x0, y0), Point::new(x1, y1)))
                }
                t => return Err(FrameError::BadTag(t)),
            };
            Frame::Admit(Admit {
                session,
                cycle_len,
                bootstrap: ClientBootstrap { num_regions, bbox },
            })
        }
        KIND_REJECT => Frame::Reject(RejectReason::from_u8(cur.u8()?)),
        KIND_DATA => {
            let session = cur.u32()?;
            let slot = cur.u64()?;
            let payload_len = cur.u16()?;
            if payload_len as usize > PAYLOAD_CAPACITY {
                return Err(FrameError::BadPayloadLen(payload_len));
            }
            let wire: &[u8; PACKET_SIZE] = cur.take(PACKET_SIZE)?.try_into().unwrap();
            let packet =
                Packet::from_wire(wire, payload_len as usize).ok_or(FrameError::BadPacket)?;
            Frame::Data(DataFrame {
                session,
                slot,
                packet,
            })
        }
        KIND_CLOSE => {
            let session = cur.u32()?;
            let tag = cur.u8()?;
            let reason = CloseReason::from_u8(tag).ok_or(FrameError::BadTag(tag))?;
            let drops = cur.u64()?;
            let laps = cur.u32()?;
            Frame::Close(Close {
                session,
                reason,
                drops,
                laps,
            })
        }
        k => return Err(FrameError::UnknownKind(k)),
    };
    cur.finish()?;
    Ok(frame)
}

/// Reassembles frames from a TCP byte stream fed in arbitrary chunks.
///
/// A frame is surfaced only once its full body has arrived and decoded —
/// there is no partial ingest. Any error poisons the decoder (a stream
/// with a corrupt length prefix has lost framing for good); callers
/// must drop the connection.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    poisoned: bool,
}

impl StreamDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Err(FrameError::BadStreamLength(0));
        }
        if self.buf.len() < 2 {
            return Ok(None);
        }
        let len = u16::from_le_bytes([self.buf[0], self.buf[1]]);
        if (len as usize) < MIN_FRAME || (len as usize) > MAX_FRAME {
            self.poisoned = true;
            return Err(FrameError::BadStreamLength(len));
        }
        let total = 2 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let res = decode(&self.buf[2..total]);
        self.buf.drain(..total);
        match res {
            Ok(f) => Ok(Some(f)),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Bytes buffered but not yet framed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// The wire tag for a queue policy carried in worker job specs.
pub fn queue_to_u8(q: QueuePolicy) -> u8 {
    match q {
        QueuePolicy::Heap => 0,
        QueuePolicy::Bucket => 1,
        QueuePolicy::Auto => 2,
    }
}

/// Inverse of [`queue_to_u8`]; unknown tags fall back to `Heap`, the
/// always-applicable policy.
pub fn queue_from_u8(b: u8) -> QueuePolicy {
    match b {
        1 => QueuePolicy::Bucket,
        2 => QueuePolicy::Auto,
        _ => QueuePolicy::Heap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use spair_broadcast::packet::PacketKind;

    fn roundtrip(f: Frame) -> Frame {
        decode(&encode(&f)).expect("roundtrip")
    }

    #[test]
    fn hello_roundtrip() {
        let f = roundtrip(Frame::Hello(Hello {
            method: "nr".into(),
            transport: 1,
            udp_port: 40123,
            offset: 987654321,
        }));
        match f {
            Frame::Hello(h) => {
                assert_eq!(h.method, "nr");
                assert_eq!(h.transport, 1);
                assert_eq!(h.udp_port, 40123);
                assert_eq!(h.offset, 987654321);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn admit_roundtrip_with_bbox() {
        let boot = ClientBootstrap {
            num_regions: 16,
            bbox: Some((Point::new(-1.5, 0.25), Point::new(3.5, 9.0))),
        };
        let f = roundtrip(Frame::Admit(Admit {
            session: 7,
            cycle_len: 4242,
            bootstrap: boot,
        }));
        match f {
            Frame::Admit(a) => {
                assert_eq!(a.session, 7);
                assert_eq!(a.cycle_len, 4242);
                assert_eq!(a.bootstrap, boot);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn data_roundtrip_preserves_packet() {
        let p = Packet::new(PacketKind::LocalIndex, 99, Bytes::from_static(b"payload"));
        let f = roundtrip(Frame::Data(DataFrame {
            session: 3,
            slot: 1 << 40,
            packet: p.clone(),
        }));
        match f {
            Frame::Data(d) => {
                assert_eq!(d.session, 3);
                assert_eq!(d.slot, 1 << 40);
                assert_eq!(d.packet.kind(), PacketKind::LocalIndex);
                assert_eq!(d.packet.next_index(), 99);
                assert_eq!(d.packet.payload(), p.payload());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn close_roundtrip() {
        let f = roundtrip(Frame::Close(Close {
            session: 12,
            reason: CloseReason::EvictedSlowConsumer,
            drops: 17,
            laps: 3,
        }));
        match f {
            Frame::Close(c) => {
                assert_eq!(c.reason, CloseReason::EvictedSlowConsumer);
                assert_eq!((c.session, c.drops, c.laps), (12, 17, 3));
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn corrupt_crc_is_typed() {
        let mut b = encode(&Frame::Reject(RejectReason::UnknownMethod));
        let last = b.len() - 5;
        b[last] ^= 0x40;
        assert!(matches!(decode(&b), Err(FrameError::BadCrc)));
    }

    #[test]
    fn stream_decoder_reassembles_split_frames() {
        let mut bytes = Vec::new();
        let frames = [
            Frame::Reject(RejectReason::ShuttingDown),
            Frame::Close(Close {
                session: 1,
                reason: CloseReason::Done,
                drops: 0,
                laps: 1,
            }),
        ];
        for f in &frames {
            bytes.extend_from_slice(&encode_stream(f));
        }
        // Feed one byte at a time: frames appear exactly at boundaries.
        let mut dec = StreamDecoder::new();
        let mut out = 0;
        for b in bytes {
            dec.push(&[b]);
            while let Some(_f) = dec.next_frame().expect("clean stream") {
                out += 1;
            }
        }
        assert_eq!(out, frames.len());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn hostile_length_prefix_poisons_stream() {
        let mut dec = StreamDecoder::new();
        dec.push(&[0xFF, 0xFF, 0, 0]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadStreamLength(0xFFFF))
        ));
        // Poisoned for good — no resynchronization guessing.
        dec.push(&encode_stream(&Frame::Reject(RejectReason::Protocol)));
        assert!(dec.next_frame().is_err());
    }
}
