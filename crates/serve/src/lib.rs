//! `spair-serve`: a real serving front end for the broadcast methods.
//!
//! Everything else in the repo drives the paper's broadcast cycles
//! through an in-process iterator. This crate is the step from
//! "reproduction" to "system": a long-running daemon takes any registry
//! method's assembled [`spair_broadcast::BroadcastCycle`] and streams it
//! over real loopback transports — UDP (one CRC-framed datagram per
//! packet) and TCP (a length-prefixed stream) — to client *processes*
//! that reconstruct the cycle from the wire and run the unmodified
//! method clients over it.
//!
//! The layering mirrors a real broadcast station:
//!
//! * [`frame`] — the wire format. One binary frame codec shared by both
//!   transports, CRC-32-tailed with the same polynomial the 128-byte
//!   packet images already use; every malformed input surfaces as a
//!   typed [`frame::FrameError`], never a panic or a partial ingest.
//! * [`events`] — the observability layer: an append-only JSONL event
//!   log in the outbox style (`session_admitted`, `cycle_started`,
//!   `packet_dropped`, `client_evicted`, `session_closed`) plus a
//!   dead-letter file for undecodable inbound frames.
//! * [`daemon`] — session admission over a TCP control connection,
//!   per-session streamer threads, per-client backpressure (TCP write
//!   stalls evict slow consumers; UDP send-buffer pressure and the
//!   deterministic injected [`daemon::DropPlan`] drop datagrams), and
//!   graceful shutdown that closes every session with a typed reason
//!   and fsyncs the log.
//! * [`client`] — the client side: tune in over a socket, collect one
//!   full cycle into a slot table (late datagrams fill on later laps —
//!   drops only ever delay an answer, they never change it), rebuild
//!   the cycle via [`spair_broadcast::BroadcastCycle::from_packets`]
//!   and answer queries with the registry's remote clients.
//! * [`signal`] — the SIGINT/SIGTERM shutdown flag for the bins (the
//!   crate's one scoped `unsafe` block; the build is offline and has no
//!   libc crate, so the handler registration is a local shim).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod events;
pub mod frame;
pub mod signal;

pub use client::{
    fetch_cycle, run_query, SessionConfig, SessionFailure, SessionMetrics, Transport,
};
pub use daemon::{DropPlan, ServeChannel, ServeDaemon, ServeOptions, ServeSummary, ServeWorld};
pub use events::{DeadLetter, Event, EventLog};
pub use frame::{CloseReason, Frame, FrameError, RejectReason, StreamDecoder};
