//! The serving daemon binary: build a world, assemble the requested
//! methods' cycles, and stream them to socket clients until a shutdown
//! signal arrives.
//!
//! ```text
//! serve_daemon [--addr 127.0.0.1:0] [--grid W H] [--regions N]
//!              [--seed S] [--methods nr,eb,dj] [--events PATH]
//!              [--dead-letter PATH] [--max-laps N] [--stall-ms N]
//!              [--drop-permille N] [--drop-laps N] [--lap-pause-us N]
//! ```
//!
//! On startup it prints exactly one `listening on ADDR` line to stdout
//! (harnesses parse it to learn the ephemeral port). On SIGINT/SIGTERM
//! it closes every session with a typed reason, flushes + fsyncs the
//! event log, prints a `stopped` summary line and exits 0.

use spair_core::BorderPrecomputation;
use spair_methods::{MethodId, MethodRegistry, ProgramSet, World};
use spair_partition::KdTreePartition;
use spair_roadnet::generators::small_grid;
use spair_serve::daemon::{DropPlan, ServeDaemon, ServeOptions, ServeWorld};
use spair_serve::signal;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    addr: String,
    grid: (usize, usize),
    regions: usize,
    seed: u64,
    methods: Vec<String>,
    events: PathBuf,
    dead_letter: PathBuf,
    max_laps: u32,
    stall_ms: u64,
    drop_permille: u16,
    drop_laps: u32,
    lap_pause_us: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            grid: (12, 12),
            regions: 16,
            seed: 9301,
            methods: Vec::new(),
            events: PathBuf::from("serve.events.jsonl"),
            dead_letter: PathBuf::from("serve.deadletter.jsonl"),
            max_laps: 64,
            stall_ms: 1500,
            drop_permille: 0,
            drop_laps: 0,
            lap_pause_us: 200,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--grid" => {
                let w = val("--grid")?.parse().map_err(|e| format!("--grid: {e}"))?;
                let h = val("--grid")?.parse().map_err(|e| format!("--grid: {e}"))?;
                args.grid = (w, h);
            }
            "--regions" => {
                args.regions = val("--regions")?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--methods" => {
                args.methods = val("--methods")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--events" => args.events = PathBuf::from(val("--events")?),
            "--dead-letter" => args.dead_letter = PathBuf::from(val("--dead-letter")?),
            "--max-laps" => {
                args.max_laps = val("--max-laps")?
                    .parse()
                    .map_err(|e| format!("--max-laps: {e}"))?
            }
            "--stall-ms" => {
                args.stall_ms = val("--stall-ms")?
                    .parse()
                    .map_err(|e| format!("--stall-ms: {e}"))?
            }
            "--drop-permille" => {
                args.drop_permille = val("--drop-permille")?
                    .parse()
                    .map_err(|e| format!("--drop-permille: {e}"))?
            }
            "--drop-laps" => {
                args.drop_laps = val("--drop-laps")?
                    .parse()
                    .map_err(|e| format!("--drop-laps: {e}"))?
            }
            "--lap-pause-us" => {
                args.lap_pause_us = val("--lap-pause-us")?
                    .parse()
                    .map_err(|e| format!("--lap-pause-us: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_daemon: {e}");
            std::process::exit(2);
        }
    };

    let registry = MethodRegistry::standard();
    let methods: Vec<MethodId> = if args.methods.is_empty() {
        registry.air_methods()
    } else {
        match args
            .methods
            .iter()
            .map(|n| registry.get(n))
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(m) => m,
            Err(e) => {
                eprintln!("serve_daemon: {e}");
                std::process::exit(2);
            }
        }
    };

    let g = small_grid(args.grid.0, args.grid.1, args.seed);
    let part = KdTreePartition::build(&g, args.regions);
    let pre = BorderPrecomputation::run(&g, &part);
    let programs = ProgramSet::new(World::from_parts(g, part, pre));
    let world = ServeWorld::from_program_set(&programs, &methods);
    if world.channels().is_empty() {
        eprintln!("serve_daemon: no servable channels among requested methods");
        std::process::exit(2);
    }

    let opts = ServeOptions {
        addr: args.addr.clone(),
        max_laps: args.max_laps,
        stall: Duration::from_millis(args.stall_ms),
        lap_pause: Duration::from_micros(args.lap_pause_us),
        drop_plan: (args.drop_permille > 0).then_some(DropPlan {
            permille: args.drop_permille,
            laps: args.drop_laps.max(1),
        }),
        events_path: args.events.clone(),
        dead_letter_path: args.dead_letter.clone(),
    };

    signal::install_handlers();
    let daemon = match ServeDaemon::start(world, opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve_daemon: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", daemon.local_addr());
    // Line-buffer flush so harnesses reading our stdout see it now.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    match daemon.shutdown() {
        Ok(s) => {
            println!(
                "stopped sessions={} rejections={} evictions={} injected_drops={} \
                 backpressure_drops={} dead_letters={} events={}",
                s.sessions,
                s.rejections,
                s.evictions,
                s.injected_drops,
                s.backpressure_drops,
                s.dead_letters,
                s.events
            );
        }
        Err(e) => {
            eprintln!("serve_daemon: shutdown flush failed: {e}");
            std::process::exit(1);
        }
    }
}
