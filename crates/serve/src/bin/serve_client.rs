//! A standalone client process for the serving daemon: tunes in over a
//! real socket, downloads one full cycle, and either reports transfer
//! stats (probe mode) or answers a query with the registry's remote
//! client.
//!
//! ```text
//! serve_client --addr HOST:PORT --method nr [--transport udp|tcp]
//!              [--offset N] [--queue heap|bucket|auto]
//!              [--max-wait-ms N] [--frame-pause-us N]
//!              [--query SRC DST SX SY TX TY]
//! ```
//!
//! Probe mode prints one `probe` line; query mode prints one `answer`
//! line with the distance and path length. Exit codes: 0 success,
//! 1 session failure (typed reason on stderr), 2 usage error.

use spair_core::query::Query;
use spair_roadnet::{Point, QueuePolicy};
use spair_serve::client::{fetch_cycle, run_query, SessionConfig, Transport};
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    addr: Option<SocketAddr>,
    method: String,
    transport: Transport,
    offset: u64,
    queue: QueuePolicy,
    max_wait_ms: u64,
    frame_pause_us: u64,
    query: Option<Query>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            method: "nr".into(),
            transport: Transport::Udp,
            offset: 0,
            queue: QueuePolicy::Heap,
            max_wait_ms: 30_000,
            frame_pause_us: 0,
            query: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => {
                args.addr = Some(val("--addr")?.parse().map_err(|e| format!("--addr: {e}"))?)
            }
            "--method" => args.method = val("--method")?,
            "--transport" => {
                args.transport = match val("--transport")?.as_str() {
                    "tcp" => Transport::Tcp,
                    "udp" => Transport::Udp,
                    other => return Err(format!("unknown transport {other}")),
                }
            }
            "--offset" => {
                args.offset = val("--offset")?
                    .parse()
                    .map_err(|e| format!("--offset: {e}"))?
            }
            "--queue" => {
                args.queue = match val("--queue")?.as_str() {
                    "heap" => QueuePolicy::Heap,
                    "bucket" => QueuePolicy::Bucket,
                    "auto" => QueuePolicy::Auto,
                    other => return Err(format!("unknown queue policy {other}")),
                }
            }
            "--max-wait-ms" => {
                args.max_wait_ms = val("--max-wait-ms")?
                    .parse()
                    .map_err(|e| format!("--max-wait-ms: {e}"))?
            }
            "--frame-pause-us" => {
                args.frame_pause_us = val("--frame-pause-us")?
                    .parse()
                    .map_err(|e| format!("--frame-pause-us: {e}"))?
            }
            "--query" => {
                let mut f = |name: &str| -> Result<f64, String> {
                    val(name)?
                        .parse::<f64>()
                        .map_err(|e| format!("{name}: {e}"))
                };
                let source = f("--query src")? as u32;
                let target = f("--query dst")? as u32;
                let (sx, sy) = (f("--query sx")?, f("--query sy")?);
                let (tx, ty) = (f("--query tx")?, f("--query ty")?);
                args.query = Some(Query {
                    source,
                    target,
                    source_pt: Point::new(sx, sy),
                    target_pt: Point::new(tx, ty),
                });
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.addr.is_none() {
        return Err("--addr is required".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_client: {e}");
            std::process::exit(2);
        }
    };
    let config = SessionConfig {
        addr: args.addr.expect("validated"),
        method: args.method.clone(),
        transport: args.transport,
        offset: args.offset,
        queue: args.queue,
        max_wait: Duration::from_millis(args.max_wait_ms),
        frame_pause: Duration::from_micros(args.frame_pause_us),
    };

    match args.query {
        None => match fetch_cycle(&config) {
            Ok((cycle, _boot, m)) => {
                println!(
                    "probe method={} transport={} session={} cycle_len={} frames_rx={} \
                     dups={} observed_drops={} bad_frames={} laps={} admission_us={} \
                     packets={}",
                    args.method,
                    args.transport.name(),
                    m.session,
                    m.cycle_len,
                    m.frames_rx,
                    m.dups,
                    m.observed_drops,
                    m.bad_frames,
                    m.laps,
                    m.admission_us,
                    cycle.len()
                );
            }
            Err(e) => {
                eprintln!("serve_client: {e}");
                std::process::exit(1);
            }
        },
        Some(q) => match run_query(&config, &q) {
            Ok((outcome, m)) => {
                println!(
                    "answer method={} transport={} session={} distance={} path_len={} \
                     observed_drops={} laps={}",
                    args.method,
                    args.transport.name(),
                    m.session,
                    outcome.distance,
                    outcome.path.len(),
                    m.observed_drops,
                    m.laps
                );
            }
            Err(e) => {
                eprintln!("serve_client: {e}");
                std::process::exit(1);
            }
        },
    }
}
