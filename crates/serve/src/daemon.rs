//! The broadcast daemon: admission, per-session streamers, backpressure
//! and graceful shutdown.
//!
//! One daemon serves one [`ServeWorld`] — a set of named broadcast
//! channels, each an assembled method cycle plus its client bootstrap
//! blob. Admission runs over a TCP control connection: the client sends
//! a `Hello` naming a method, a transport and a tune-in offset; the
//! daemon replies `Admit` (session id, cycle length, bootstrap) and
//! starts streaming the cycle lap after lap in absolute slot order
//! (`slot % cycle_len` is the cycle position), until the client closes,
//! the lap budget runs out, the consumer is too slow, or the daemon
//! shuts down — each end typed as a [`CloseReason`] in both the wire
//! `Close` frame and the `session_closed` event.
//!
//! Backpressure is transport-shaped, never answer-shaped (the PR 6
//! contract — late or typed, never wrong):
//!
//! * **TCP**: the kernel send buffer is the queue and a write timeout
//!   is the stall detector. A consumer that drains nothing for
//!   [`ServeOptions::stall`] is evicted (`client_evicted`, typed
//!   `Close`).
//! * **UDP**: a full socket buffer drops the datagram (counted,
//!   `packet_dropped` with cause `backpressure`); a [`DropPlan`]
//!   additionally injects *deterministic* seeded drops so contention
//!   cells exercise gap recovery reproducibly. Dropped slots re-arrive
//!   on a later lap — the client is delayed, its answer unchanged.

use crate::events::{DeadLetter, Event, EventLog};
use crate::frame::{
    self, Close, CloseReason, DataFrame, Frame, Hello, RejectReason, StreamDecoder,
};
use spair_broadcast::BroadcastCycle;
use spair_methods::{ClientBootstrap, MethodId, MethodRegistry, ProgramSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One served broadcast channel: a method's assembled cycle plus the
/// a-priori blob its remote clients need.
pub struct ServeChannel {
    /// Registry name (`"nr"`, `"dj"`, ...).
    pub name: String,
    /// The assembled cycle, shared across session threads.
    pub cycle: Arc<BroadcastCycle>,
    /// Shipped in the admission reply.
    pub bootstrap: ClientBootstrap,
}

/// The set of channels one daemon serves.
#[derive(Default)]
pub struct ServeWorld {
    channels: Vec<ServeChannel>,
}

impl ServeWorld {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a channel.
    pub fn push(&mut self, channel: ServeChannel) {
        self.channels.push(channel);
    }

    /// Builds a world from an already-built [`ProgramSet`]: every
    /// requested method that broadcasts its own cycle to air clients
    /// becomes a channel (descriptor-driven — no per-method dispatch).
    pub fn from_program_set(programs: &ProgramSet, methods: &[MethodId]) -> Self {
        let mut world = Self::new();
        for &m in methods {
            let d = m.descriptor();
            if !(d.air_client && d.own_channel) {
                continue;
            }
            let program = programs.ensure(m);
            let Ok(cycle) = program.cycle() else { continue };
            world.push(ServeChannel {
                name: m.name().to_string(),
                cycle: Arc::new(cycle.clone()),
                bootstrap: program.client_bootstrap(),
            });
        }
        world
    }

    /// The served channels.
    pub fn channels(&self) -> &[ServeChannel] {
        &self.channels
    }

    fn find(&self, name: &str) -> Option<&ServeChannel> {
        self.channels.iter().find(|c| c.name == name)
    }
}

/// Deterministic injected datagram drops (UDP transport only): during
/// the first `laps` laps of a session, each slot is dropped with
/// probability `permille`/1000, seeded by (session, slot) — so a
/// contention cell's drop pattern replays exactly.
#[derive(Debug, Clone, Copy)]
pub struct DropPlan {
    /// Drop probability in permille (0..=1000).
    pub permille: u16,
    /// Inject only during this many initial laps (later laps heal the
    /// gaps, keeping sessions late-but-correct).
    pub laps: u32,
}

impl DropPlan {
    fn drops(&self, session: u32, slot: u64, lap: u32) -> bool {
        if lap >= self.laps || self.permille == 0 {
            return false;
        }
        let h = splitmix64(0x5350_D809 ^ (u64::from(session) << 32) ^ slot);
        (h % 1000) < u64::from(self.permille)
    }
}

/// `splitmix64` — the same generator the load harness seeds sessions
/// with (its copy is private to that crate; the function is its own
/// spec: Steele et al., "Fast splittable pseudorandom number
/// generators").
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Laps streamed per session before the server closes it
    /// (`Expired`) — the bound that keeps abandoned sessions finite.
    pub max_laps: u32,
    /// TCP write stall after which a consumer is evicted.
    pub stall: Duration,
    /// Pause between laps (lets prompt clients drain; keeps UDP bursts
    /// inside the loopback socket buffer).
    pub lap_pause: Duration,
    /// Deterministic injected drops (UDP data frames only).
    pub drop_plan: Option<DropPlan>,
    /// JSONL event log path.
    pub events_path: PathBuf,
    /// Dead-letter file path.
    pub dead_letter_path: PathBuf,
}

impl ServeOptions {
    /// Defaults on an ephemeral loopback port, logging under `dir`.
    pub fn in_dir(dir: &std::path::Path) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_laps: 64,
            stall: Duration::from_millis(1500),
            lap_pause: Duration::from_micros(200),
            drop_plan: None,
            events_path: dir.join("serve.events.jsonl"),
            dead_letter_path: dir.join("serve.deadletter.jsonl"),
        }
    }
}

/// Monotonic counters the daemon exposes after shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Sessions admitted.
    pub sessions: u64,
    /// Admissions rejected.
    pub rejections: u64,
    /// Slow consumers evicted.
    pub evictions: u64,
    /// Deterministically injected datagram drops.
    pub injected_drops: u64,
    /// Datagrams dropped by send-buffer backpressure.
    pub backpressure_drops: u64,
    /// Dead-letter entries recorded.
    pub dead_letters: u64,
    /// Event-log lines emitted.
    pub events: u64,
}

struct Counters {
    sessions: AtomicU64,
    rejections: AtomicU64,
    evictions: AtomicU64,
    injected_drops: AtomicU64,
    backpressure_drops: AtomicU64,
}

struct Shared {
    world: ServeWorld,
    opts: ServeOptions,
    stop: AtomicBool,
    next_session: AtomicU32,
    events: EventLog,
    dead: DeadLetter,
    counters: Counters,
}

/// A running daemon. Dropping it without [`ServeDaemon::shutdown`]
/// aborts ungracefully (tests assert the graceful path flushes).
pub struct ServeDaemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServeDaemon {
    /// Binds, starts the accept loop, and returns the running daemon.
    pub fn start(world: ServeWorld, opts: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let events = EventLog::create(&opts.events_path)?;
        let dead = DeadLetter::create(&opts.dead_letter_path)?;
        let mut started = Event::new("daemon_started")
            .str("addr", &addr.to_string())
            .u64("channels", world.channels.len() as u64);
        for c in &world.channels {
            started = started.u64(&format!("cycle_len_{}", c.name), c.cycle.len() as u64);
        }
        events.emit(started);
        let shared = Arc::new(Shared {
            world,
            opts,
            stop: AtomicBool::new(false),
            next_session: AtomicU32::new(1),
            events,
            dead,
            counters: Counters {
                sessions: AtomicU64::new(0),
                rejections: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                injected_drops: AtomicU64::new(0),
                backpressure_drops: AtomicU64::new(0),
            },
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolve ephemeral ports through this).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The event log path.
    pub fn events_path(&self) -> PathBuf {
        self.shared.opts.events_path.clone()
    }

    /// Requests stop, joins every session, closes them with a typed
    /// reason, appends `daemon_stopped`, and flushes + fsyncs both log
    /// files. Idempotent.
    pub fn shutdown(mut self) -> std::io::Result<ServeSummary> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let c = &self.shared.counters;
        let summary = ServeSummary {
            sessions: c.sessions.load(Ordering::SeqCst),
            rejections: c.rejections.load(Ordering::SeqCst),
            evictions: c.evictions.load(Ordering::SeqCst),
            injected_drops: c.injected_drops.load(Ordering::SeqCst),
            backpressure_drops: c.backpressure_drops.load(Ordering::SeqCst),
            dead_letters: self.shared.dead.recorded(),
            events: 0,
        };
        self.shared.events.emit(
            Event::new("daemon_stopped")
                .u64("sessions", summary.sessions)
                .u64("rejections", summary.rejections)
                .u64("evictions", summary.evictions)
                .u64("injected_drops", summary.injected_drops)
                .u64("backpressure_drops", summary.backpressure_drops)
                .u64("dead_letters", summary.dead_letters),
        );
        self.shared.events.flush_sync()?;
        self.shared.dead.flush_sync()?;
        Ok(ServeSummary {
            events: self.shared.events.emitted(),
            ..summary
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                let s = Arc::clone(&shared);
                sessions.push(std::thread::spawn(move || run_session(stream, peer, s)));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// Reads frames currently available on the control stream without
/// blocking; returns the first `Close` seen, or an error for a poisoned
/// stream.
fn poll_close(
    stream: &TcpStream,
    dec: &mut StreamDecoder,
) -> Result<Option<Close>, frame::FrameError> {
    let mut buf = [0u8; 1024];
    let mut s = stream;
    let _ = stream.set_nonblocking(true);
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => dec.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    let _ = stream.set_nonblocking(false);
    while let Some(f) = dec.next_frame()? {
        if let Frame::Close(c) = f {
            return Ok(Some(c));
        }
    }
    Ok(None)
}

struct SessionCtx<'a> {
    shared: &'a Shared,
    session: u32,
    frames_sent: u64,
    injected: u64,
    backpressure: u64,
}

impl SessionCtx<'_> {
    fn close_event(&self, reason: &str, client: Option<Close>) {
        let mut ev = Event::new("session_closed")
            .u64("session", u64::from(self.session))
            .str("reason", reason)
            .u64("frames_sent", self.frames_sent)
            .u64("drops_injected", self.injected)
            .u64("drops_backpressure", self.backpressure);
        if let Some(c) = client {
            ev = ev
                .u64("client_drops", c.drops)
                .u64("client_laps", u64::from(c.laps));
        }
        self.shared.events.emit(ev);
    }
}

fn run_session(mut stream: TcpStream, peer: SocketAddr, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));

    // --- Admission: read the Hello off the control stream. ---
    let mut dec = StreamDecoder::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let hello: Hello = loop {
        if shared.stop.load(Ordering::SeqCst) || Instant::now() > deadline {
            let _ = stream.write_all(&frame::encode_stream(&Frame::Reject(
                RejectReason::ShuttingDown,
            )));
            return;
        }
        let mut buf = [0u8; 1024];
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => dec.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => return,
        }
        let err = match dec.next_frame() {
            Ok(None) => continue,
            Ok(Some(Frame::Hello(h))) => break h,
            // Out-of-protocol frame before admission.
            Ok(Some(_)) => frame::FrameError::UnknownKind(0xFF),
            Err(e) => e,
        };
        // Undecodable or out-of-protocol bytes: dead-letter the evidence
        // and refuse — the daemon state is untouched.
        shared
            .dead
            .record(&format!("hello from {peer}"), &err, &buf);
        shared.counters.rejections.fetch_add(1, Ordering::SeqCst);
        shared.shared_reject(&mut stream, peer, RejectReason::Protocol);
        return;
    };

    // --- Resolve the channel. ---
    let Some(channel) = shared.world.find(&hello.method) else {
        let known = MethodRegistry::standard().get(&hello.method).is_ok();
        let reason = if known {
            RejectReason::NotServed
        } else {
            RejectReason::UnknownMethod
        };
        shared.counters.rejections.fetch_add(1, Ordering::SeqCst);
        shared.shared_reject(&mut stream, peer, reason);
        return;
    };

    let session = shared.next_session.fetch_add(1, Ordering::SeqCst);
    shared.counters.sessions.fetch_add(1, Ordering::SeqCst);
    let cycle = Arc::clone(&channel.cycle);
    let cycle_len = cycle.len() as u64;
    let transport = if hello.transport == 1 { "udp" } else { "tcp" };
    shared.events.emit(
        Event::new("session_admitted")
            .u64("session", u64::from(session))
            .str("method", &channel.name)
            .str("transport", transport)
            .str("peer", &peer.to_string())
            .u64("offset", hello.offset)
            .u64("cycle_len", cycle_len),
    );
    if stream
        .write_all(&frame::encode_stream(&Frame::Admit(frame::Admit {
            session,
            cycle_len,
            bootstrap: channel.bootstrap,
        })))
        .is_err()
    {
        shared.events.emit(
            Event::new("session_closed")
                .u64("session", u64::from(session))
                .str("reason", "connection_lost")
                .u64("frames_sent", 0),
        );
        return;
    }

    let mut ctx = SessionCtx {
        shared: &shared,
        session,
        frames_sent: 0,
        injected: 0,
        backpressure: 0,
    };
    if hello.transport == 1 {
        stream_udp(&mut ctx, &stream, &mut dec, peer, &hello, &cycle);
    } else {
        stream_tcp(&mut ctx, &mut stream, &mut dec, &hello, &cycle);
    }
}

impl Shared {
    fn shared_reject(&self, stream: &mut TcpStream, peer: SocketAddr, reason: RejectReason) {
        self.events.emit(
            Event::new("session_rejected")
                .str("peer", &peer.to_string())
                .u64("reason", reason as u64),
        );
        let _ = stream.write_all(&frame::encode_stream(&Frame::Reject(reason)));
    }
}

fn send_close(stream: &TcpStream, session: u32, reason: CloseReason) {
    let mut stream = stream;
    let _ = stream.write_all(&frame::encode_stream(&Frame::Close(Close {
        session,
        reason,
        drops: 0,
        laps: 0,
    })));
}

/// Streams the cycle over the control TCP connection itself. The kernel
/// send buffer is the per-client queue; a write that stalls past
/// `opts.stall` evicts the consumer.
fn stream_tcp(
    ctx: &mut SessionCtx<'_>,
    stream: &mut TcpStream,
    dec: &mut StreamDecoder,
    hello: &Hello,
    cycle: &BroadcastCycle,
) {
    let shared = ctx.shared;
    let opts = &shared.opts;
    let _ = stream.set_write_timeout(Some(opts.stall));
    let len = cycle.len() as u64;
    for lap in 0..opts.max_laps {
        if shared.stop.load(Ordering::SeqCst) {
            send_close(stream, ctx.session, CloseReason::DaemonShutdown);
            ctx.close_event("daemon_shutdown", None);
            return;
        }
        shared.events.emit(
            Event::new("cycle_started")
                .u64("session", u64::from(ctx.session))
                .u64("lap", u64::from(lap)),
        );
        for i in 0..len {
            let slot = hello.offset + u64::from(lap) * len + i;
            let pos = (slot % len) as usize;
            let bytes = frame::encode_stream(&Frame::Data(DataFrame {
                session: ctx.session,
                slot,
                packet: cycle.packet(pos).clone(),
            }));
            match stream.write_all(&bytes) {
                Ok(()) => ctx.frames_sent += 1,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // The consumer drained nothing for a full stall
                    // window: evict it.
                    shared.counters.evictions.fetch_add(1, Ordering::SeqCst);
                    shared.events.emit(
                        Event::new("client_evicted")
                            .u64("session", u64::from(ctx.session))
                            .u64("stall_ms", opts.stall.as_millis() as u64)
                            .u64("slot", slot),
                    );
                    send_close(stream, ctx.session, CloseReason::EvictedSlowConsumer);
                    ctx.close_event(CloseReason::EvictedSlowConsumer.label(), None);
                    return;
                }
                Err(_) => {
                    // Peer hung up; whatever it sent first (normally a
                    // typed Close) is still readable.
                    let client = poll_close(stream, dec).ok().flatten();
                    let reason = if client.is_some() {
                        "done"
                    } else {
                        "connection_lost"
                    };
                    ctx.close_event(reason, client);
                    return;
                }
            }
        }
        match poll_close(stream, dec) {
            Ok(Some(c)) => {
                ctx.close_event(c.reason.label(), Some(c));
                return;
            }
            Ok(None) => {}
            Err(e) => {
                shared
                    .dead
                    .record(&format!("session {} control", ctx.session), &e, &[]);
                send_close(stream, ctx.session, CloseReason::ProtocolError);
                ctx.close_event(CloseReason::ProtocolError.label(), None);
                return;
            }
        }
        std::thread::sleep(opts.lap_pause);
    }
    send_close(stream, ctx.session, CloseReason::Expired);
    ctx.close_event(CloseReason::Expired.label(), None);
}

/// Streams the cycle as one datagram per packet to the client's UDP
/// port, keeping the TCP connection as the control plane.
fn stream_udp(
    ctx: &mut SessionCtx<'_>,
    control: &TcpStream,
    dec: &mut StreamDecoder,
    peer: SocketAddr,
    hello: &Hello,
    cycle: &BroadcastCycle,
) {
    let shared = ctx.shared;
    let opts = &shared.opts;
    let sock = match UdpSocket::bind("127.0.0.1:0") {
        Ok(s) => s,
        Err(_) => {
            send_close(control, ctx.session, CloseReason::ProtocolError);
            ctx.close_event("udp_bind_failed", None);
            return;
        }
    };
    let _ = sock.set_nonblocking(true);
    let dest = SocketAddr::new(peer.ip(), hello.udp_port);
    let len = cycle.len() as u64;
    for lap in 0..opts.max_laps {
        if shared.stop.load(Ordering::SeqCst) {
            send_close(control, ctx.session, CloseReason::DaemonShutdown);
            ctx.close_event("daemon_shutdown", None);
            return;
        }
        shared.events.emit(
            Event::new("cycle_started")
                .u64("session", u64::from(ctx.session))
                .u64("lap", u64::from(lap)),
        );
        let mut lap_injected = 0u64;
        let mut lap_backpressure = 0u64;
        for i in 0..len {
            let slot = hello.offset + u64::from(lap) * len + i;
            if let Some(plan) = opts.drop_plan {
                if plan.drops(ctx.session, slot, lap) {
                    lap_injected += 1;
                    continue;
                }
            }
            let pos = (slot % len) as usize;
            let body = frame::encode(&Frame::Data(DataFrame {
                session: ctx.session,
                slot,
                packet: cycle.packet(pos).clone(),
            }));
            match sock.send_to(&body, dest) {
                Ok(_) => ctx.frames_sent += 1,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Loopback send buffer full: UDP semantics say drop.
                    lap_backpressure += 1;
                }
                Err(_) => lap_backpressure += 1,
            }
        }
        if lap_injected > 0 {
            ctx.injected += lap_injected;
            shared
                .counters
                .injected_drops
                .fetch_add(lap_injected, Ordering::SeqCst);
            shared.events.emit(
                Event::new("packet_dropped")
                    .u64("session", u64::from(ctx.session))
                    .u64("lap", u64::from(lap))
                    .u64("count", lap_injected)
                    .str("cause", "injected"),
            );
        }
        if lap_backpressure > 0 {
            ctx.backpressure += lap_backpressure;
            shared
                .counters
                .backpressure_drops
                .fetch_add(lap_backpressure, Ordering::SeqCst);
            shared.events.emit(
                Event::new("packet_dropped")
                    .u64("session", u64::from(ctx.session))
                    .u64("lap", u64::from(lap))
                    .u64("count", lap_backpressure)
                    .str("cause", "backpressure"),
            );
        }
        match poll_close(control, dec) {
            Ok(Some(c)) => {
                ctx.close_event(c.reason.label(), Some(c));
                return;
            }
            Ok(None) => {}
            Err(e) => {
                shared
                    .dead
                    .record(&format!("session {} control", ctx.session), &e, &[]);
                send_close(control, ctx.session, CloseReason::ProtocolError);
                ctx.close_event(CloseReason::ProtocolError.label(), None);
                return;
            }
        }
        std::thread::sleep(opts.lap_pause);
    }
    send_close(control, ctx.session, CloseReason::Expired);
    ctx.close_event(CloseReason::Expired.label(), None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_plan_is_deterministic_and_bounded() {
        let plan = DropPlan {
            permille: 250,
            laps: 2,
        };
        let mut dropped = 0;
        for slot in 0..1000u64 {
            let a = plan.drops(7, slot, 0);
            let b = plan.drops(7, slot, 0);
            assert_eq!(a, b, "same (session, slot) must replay");
            if a {
                dropped += 1;
            }
            assert!(!plan.drops(7, slot, 2), "beyond plan laps never drops");
        }
        // ~25% with generous slack.
        assert!((150..350).contains(&dropped), "dropped {dropped}");
        // Different sessions see different drop patterns.
        assert!((0..1000u64).any(|s| plan.drops(1, s, 0) != plan.drops(2, s, 0)));
    }

    #[test]
    fn options_default_paths_follow_dir() {
        let o = ServeOptions::in_dir(std::path::Path::new("/tmp/x"));
        assert!(o.events_path.ends_with("serve.events.jsonl"));
        assert!(o.dead_letter_path.ends_with("serve.deadletter.jsonl"));
        assert_eq!(o.max_laps, 64);
    }
}
