//! The daemon's observability layer: an append-only JSONL event log in
//! the outbox style, plus a dead-letter file for undecodable frames.
//!
//! Every line is one JSON object with a monotonic `seq`, a wall-clock
//! `ts_ms` and an `event` kind; the remaining fields are flat
//! event-specific columns. Timestamps are observability only — nothing
//! deterministic (digests, bench cells) ever reads this file. The
//! dead-letter file mirrors the same shape and records *why* inbound
//! bytes failed to decode together with a bounded hex prefix, so a
//! misbehaving client is diagnosable after the fact without ever
//! letting its bytes poison daemon state.

use crate::frame::FrameError;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One event line under construction: a kind plus flat fields, appended
/// in call order.
#[derive(Debug)]
pub struct Event {
    kind: &'static str,
    fields: String,
}

impl Event {
    /// Starts an event of `kind`.
    pub fn new(kind: &'static str) -> Self {
        Self {
            kind,
            fields: String::new(),
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.fields.push_str(&format!(",\"{key}\":{v}"));
        self
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields.push_str(&format!(",\"{key}\":\""));
        escape_into(&mut self.fields, v);
        self.fields.push('"');
        self
    }

    fn render(&self, seq: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"ts_ms\":{},\"event\":\"{}\"{}}}\n",
            now_ms(),
            self.kind,
            self.fields
        )
    }
}

struct Sink {
    w: BufWriter<File>,
    seq: u64,
}

/// The append-only JSONL event log. Shared across session threads; one
/// mutex serializes lines so events never interleave mid-line.
pub struct EventLog {
    path: PathBuf,
    sink: Mutex<Sink>,
}

impl EventLog {
    /// Creates (truncates) the log file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let f = File::create(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            sink: Mutex::new(Sink {
                w: BufWriter::new(f),
                seq: 0,
            }),
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line and flushes it (whole lines reach the
    /// file immediately, so `tail -f` and watchdogs see live state;
    /// fsync still only happens on [`EventLog::flush_sync`]). Write
    /// errors are swallowed by design — observability must never take
    /// the data plane down.
    pub fn emit(&self, event: Event) {
        let mut s = self.sink.lock().expect("event log lock");
        s.seq += 1;
        let line = event.render(s.seq);
        let _ = s.w.write_all(line.as_bytes());
        let _ = s.w.flush();
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.sink.lock().expect("event log lock").seq
    }

    /// Flushes buffered lines and fsyncs the file — the graceful
    /// shutdown path calls this so a `kill -INT` never truncates the
    /// log mid-line.
    pub fn flush_sync(&self) -> std::io::Result<()> {
        let mut s = self.sink.lock().expect("event log lock");
        s.w.flush()?;
        s.w.get_ref().sync_all()
    }
}

/// The dead-letter file: one line per undecodable inbound frame.
pub struct DeadLetter {
    log: EventLog,
}

impl DeadLetter {
    /// Creates (truncates) the dead-letter file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            log: EventLog::create(path)?,
        })
    }

    /// Records undecodable bytes: where they came from, the typed
    /// decode error, and a bounded hex prefix of the offending bytes.
    pub fn record(&self, context: &str, err: &FrameError, bytes: &[u8]) {
        let mut hex = String::new();
        for b in bytes.iter().take(32) {
            hex.push_str(&format!("{b:02x}"));
        }
        self.log.emit(
            Event::new("dead_letter")
                .str("context", context)
                .str("error", err.tag())
                .str("detail", &err.to_string())
                .u64("len", bytes.len() as u64)
                .str("prefix_hex", &hex),
        );
    }

    /// Entries recorded so far.
    pub fn recorded(&self) -> u64 {
        self.log.emitted()
    }

    /// Flush + fsync (shutdown path).
    pub fn flush_sync(&self) -> std::io::Result<()> {
        self.log.flush_sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_json_objects_in_seq_order() {
        let dir = std::env::temp_dir().join(format!("spair_serve_ev_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::create(&path).unwrap();
        log.emit(
            Event::new("session_admitted")
                .u64("session", 1)
                .str("method", "nr"),
        );
        log.emit(
            Event::new("session_closed")
                .u64("session", 1)
                .str("reason", "done"),
        );
        log.flush_sync().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":1,"));
        assert!(lines[0].contains("\"event\":\"session_admitted\""));
        assert!(lines[1].starts_with("{\"seq\":2,"));
        assert!(lines[1].ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\n");
        assert_eq!(s, "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn dead_letter_records_error_taxonomy() {
        let dir = std::env::temp_dir().join(format!("spair_serve_dl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dead.jsonl");
        let dl = DeadLetter::create(&path).unwrap();
        dl.record("hello", &FrameError::BadCrc, &[0xde, 0xad, 0xbe, 0xef]);
        dl.flush_sync().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"error\":\"bad_crc\""));
        assert!(text.contains("\"prefix_hex\":\"deadbeef\""));
        assert_eq!(dl.recorded(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
