//! Property-based tests on the broadcast substrate: wire format, record
//! packing, channel clock accounting and loss statistics.

use bytes::Bytes;
use proptest::prelude::*;
use spair_broadcast::codec::{PayloadReader, RecordBuf, RecordWriter};
use spair_broadcast::cycle::{CycleBuilder, SegmentKind};
use spair_broadcast::packet::{Packet, PacketKind, PACKET_SIZE, PAYLOAD_CAPACITY};
use spair_broadcast::{BroadcastChannel, LossModel, Received};

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::Index),
        Just(PacketKind::LocalIndex),
        Just(PacketKind::Data),
        Just(PacketKind::Aux),
    ]
}

fn test_cycle(n: usize) -> spair_broadcast::BroadcastCycle {
    let mut b = CycleBuilder::new();
    b.push_segment(
        SegmentKind::NetworkData,
        PacketKind::Data,
        (0..n).map(|i| Bytes::from(vec![i as u8])).collect(),
    );
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packets survive the 128-byte wire round trip exactly.
    #[test]
    fn packet_wire_round_trip(
        kind in arb_kind(),
        next in 0u32..1_000_000,
        payload in prop::collection::vec(any::<u8>(), 0..=PAYLOAD_CAPACITY),
    ) {
        let len = payload.len();
        let p = Packet::new(kind, next, Bytes::from(payload));
        let wire = p.to_wire();
        prop_assert_eq!(wire.len(), PACKET_SIZE);
        let q = Packet::from_wire(&wire, len).expect("valid frame");
        prop_assert_eq!(q.kind(), p.kind());
        prop_assert_eq!(q.next_index(), p.next_index());
        prop_assert_eq!(q.payload(), p.payload());
    }

    /// RecordWriter never splits a record across payloads and never
    /// exceeds capacity; concatenating the payloads reproduces the
    /// record stream byte for byte.
    #[test]
    fn record_writer_packs_without_splitting(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..40), 1..50),
        capacity in 40usize..200,
    ) {
        let mut w = RecordWriter::with_capacity(capacity);
        for r in &records {
            w.push_record(r);
        }
        let payloads = w.finish();
        for p in &payloads {
            prop_assert!(p.len() <= capacity);
        }
        let mut all = Vec::new();
        for p in &payloads {
            all.extend_from_slice(p);
        }
        let want: Vec<u8> = records.iter().flatten().copied().collect();
        prop_assert_eq!(all, want);
        // No record straddles a boundary: replaying the greedy packing
        // over record lengths must give exactly the payload lengths.
        let mut lens = Vec::new();
        let mut cur = 0usize;
        for r in &records {
            if cur + r.len() > capacity {
                lens.push(cur);
                cur = 0;
            }
            cur += r.len();
        }
        if cur > 0 {
            lens.push(cur);
        }
        let got: Vec<usize> = payloads.iter().map(|p| p.len()).collect();
        prop_assert_eq!(got, lens);
    }

    /// RecordBuf's little-endian primitives round-trip through
    /// PayloadReader in order.
    #[test]
    fn record_buf_round_trips(
        a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
        e in any::<f64>(),
    ) {
        let mut buf = RecordBuf::new();
        buf.put_u8(a).put_u16(b).put_u32(c).put_u64(d).put_f64(e);
        let mut r = PayloadReader::new(buf.as_slice());
        prop_assert_eq!(r.read_u8(), Some(a));
        prop_assert_eq!(r.read_u16(), Some(b));
        prop_assert_eq!(r.read_u32(), Some(c));
        prop_assert_eq!(r.read_u64(), Some(d));
        let back = r.read_f64().unwrap();
        prop_assert!(back == e || (back.is_nan() && e.is_nan()));
        prop_assert!(r.is_empty());
    }

    /// Channel bookkeeping: elapsed = tuned + slept always, regardless of
    /// the receive/sleep interleaving; offsets wrap modulo the cycle.
    #[test]
    fn channel_clock_invariants(
        n in 4usize..64,
        offset in 0usize..10_000,
        ops in prop::collection::vec((any::<bool>(), 0u64..50), 1..60),
    ) {
        let c = test_cycle(n);
        let mut ch = BroadcastChannel::tune_in(&c, offset % n, LossModel::Lossless);
        for (recv, sleep) in ops {
            let before = ch.offset();
            if recv {
                match ch.receive() {
                    Received::Packet(p) => prop_assert_eq!(p.payload()[0] as usize, before % 256),
                    Received::Lost | Received::Corrupted => {
                        prop_assert!(false, "lossless channel lost a packet")
                    }
                }
                prop_assert_eq!(ch.offset(), (before + 1) % n);
            } else {
                ch.sleep(sleep);
                prop_assert_eq!(ch.offset(), (before + sleep as usize) % n);
            }
            prop_assert_eq!(ch.elapsed(), ch.tuned() + ch.slept());
        }
    }

    /// sleep_to_offset always lands exactly on the target and never
    /// sleeps a full extra cycle.
    #[test]
    fn sleep_to_offset_is_minimal(
        n in 2usize..64,
        start in 0usize..10_000,
        target in 0usize..10_000,
    ) {
        let c = test_cycle(n);
        let mut ch = BroadcastChannel::tune_in(&c, start % n, LossModel::Lossless);
        let before = ch.elapsed();
        ch.sleep_to_offset(target % n);
        prop_assert_eq!(ch.offset(), target % n);
        prop_assert!(ch.elapsed() - before < n as u64);
    }

    /// Bernoulli loss at rate 0 is lossless and at any rate keeps the
    /// empirical frequency near the configured one.
    #[test]
    fn bernoulli_rate_is_respected(rate in 0.0f64..0.5, seed in 0u64..100) {
        let c = test_cycle(16);
        let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bernoulli(rate, seed));
        let total = 20_000;
        let lost = (0..total)
            .filter(|_| matches!(ch.receive(), Received::Lost))
            .count();
        let measured = lost as f64 / total as f64;
        prop_assert!((measured - rate).abs() < 0.02 + rate * 0.2,
            "rate {rate}: measured {measured}");
    }
}
