//! Record-aligned payload encoding.
//!
//! Broadcast content is a sequence of *records* (a node's adjacency list,
//! one w×w square of EB's distance matrix, one row range of an NR local
//! index, ...). Records never straddle packet boundaries: §6.2 argues for
//! placing separable pieces of information in separate packets so that one
//! lost packet costs only the records inside it. [`RecordWriter`] enforces
//! the discipline at encode time; [`PayloadReader`] is the matching
//! little-endian cursor used by the simulated clients to decode payloads
//! they received.

use crate::packet::PAYLOAD_CAPACITY;
use bytes::Bytes;
use std::fmt;

/// A value that does not fit the fixed-width wire field an encoder is
/// writing it into. The air-index encoders use the checked converters
/// below instead of silent `as` truncation: a world too large for a
/// format fails loudly with the field name, never with a wrapped
/// counter and a corrupt index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// Wire-field name, e.g. `"hiti se path start"`.
    pub field: &'static str,
    /// The value that overflowed.
    pub value: u64,
    /// Largest value the field can carry.
    pub max: u64,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "encode overflow: {} = {} exceeds wire field max {}",
            self.field, self.value, self.max
        )
    }
}

impl std::error::Error for EncodeError {}

/// Checked `usize` → `u8` wire conversion.
pub fn u8_of(value: usize, field: &'static str) -> Result<u8, EncodeError> {
    u8::try_from(value).map_err(|_| EncodeError {
        field,
        value: value as u64,
        max: u8::MAX as u64,
    })
}

/// Checked `usize` → `u16` wire conversion.
pub fn u16_of(value: usize, field: &'static str) -> Result<u16, EncodeError> {
    u16::try_from(value).map_err(|_| EncodeError {
        field,
        value: value as u64,
        max: u16::MAX as u64,
    })
}

/// Checked `usize` → `u32` wire conversion.
pub fn u32_of(value: usize, field: &'static str) -> Result<u32, EncodeError> {
    u32::try_from(value).map_err(|_| EncodeError {
        field,
        value: value as u64,
        max: u32::MAX as u64,
    })
}

/// Splits a byte stream into packet payloads along record boundaries.
#[derive(Debug)]
pub struct RecordWriter {
    capacity: usize,
    payloads: Vec<Bytes>,
    current: Vec<u8>,
}

impl Default for RecordWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordWriter {
    /// Writer with the standard payload capacity.
    pub fn new() -> Self {
        Self::with_capacity(PAYLOAD_CAPACITY)
    }

    /// Writer with a custom capacity (tests use small capacities).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            payloads: Vec::new(),
            current: Vec::with_capacity(capacity),
        }
    }

    /// Appends one record. Panics if the record alone exceeds a payload —
    /// encoders must split their records below the capacity.
    pub fn push_record(&mut self, rec: &[u8]) {
        assert!(
            rec.len() <= self.capacity,
            "record of {} bytes exceeds payload capacity {}",
            rec.len(),
            self.capacity
        );
        if self.current.len() + rec.len() > self.capacity {
            self.flush();
        }
        self.current.extend_from_slice(rec);
    }

    /// Ends the current packet (subsequent records start a new one).
    pub fn flush(&mut self) {
        if !self.current.is_empty() {
            self.payloads
                .push(Bytes::from(std::mem::take(&mut self.current)));
        }
    }

    /// Number of payloads produced so far if finished now.
    pub fn packet_count(&self) -> usize {
        self.payloads.len() + usize::from(!self.current.is_empty())
    }

    /// Finishes and returns the payloads.
    pub fn finish(mut self) -> Vec<Bytes> {
        self.flush();
        self.payloads
    }
}

/// Little-endian read cursor over one payload.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the payload is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Takes the next `N` bytes as a fixed array. Panic-free: bounds are
    /// the only failure, reported as `None` — this reader decodes bytes
    /// received off the air, where truncation must be a typed miss, not
    /// a crash.
    #[inline]
    fn take_array<const N: usize>(&mut self) -> Option<[u8; N]> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Some(out)
    }

    /// Reads a `u8`.
    pub fn read_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Option<u16> {
        self.take_array().map(u16::from_le_bytes)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Option<u32> {
        self.take_array().map(u32::from_le_bytes)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Option<u64> {
        self.take_array().map(u64::from_le_bytes)
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Option<f32> {
        self.take_array().map(f32::from_le_bytes)
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&mut self) -> Option<f64> {
        self.take_array().map(f64::from_le_bytes)
    }
}

/// Record-construction helper mirroring [`PayloadReader`].
#[derive(Debug, Default)]
pub struct RecordBuf {
    bytes: Vec<u8>,
}

impl RecordBuf {
    /// Empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.bytes.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Current encoded size.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Clears for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_never_straddle_packets() {
        let mut w = RecordWriter::with_capacity(10);
        for i in 0..20u8 {
            w.push_record(&[i; 4]);
        }
        let payloads = w.finish();
        // 2 records of 4 bytes fit per 10-byte payload.
        assert_eq!(payloads.len(), 10);
        for p in &payloads {
            assert_eq!(p.len() % 4, 0);
            assert!(p.len() <= 10);
        }
    }

    #[test]
    fn explicit_flush_starts_new_packet() {
        let mut w = RecordWriter::with_capacity(100);
        w.push_record(b"abc");
        w.flush();
        w.push_record(b"def");
        let payloads = w.finish();
        assert_eq!(payloads.len(), 2);
        assert_eq!(&payloads[0][..], b"abc");
        assert_eq!(&payloads[1][..], b"def");
    }

    #[test]
    #[should_panic(expected = "exceeds payload capacity")]
    fn oversized_record_panics() {
        let mut w = RecordWriter::with_capacity(4);
        w.push_record(&[0; 5]);
    }

    #[test]
    fn packet_count_tracks_pending() {
        let mut w = RecordWriter::with_capacity(8);
        assert_eq!(w.packet_count(), 0);
        w.push_record(&[0; 4]);
        assert_eq!(w.packet_count(), 1);
        w.push_record(&[0; 4]);
        assert_eq!(w.packet_count(), 1);
        w.push_record(&[0; 4]);
        assert_eq!(w.packet_count(), 2);
    }

    #[test]
    fn reader_round_trips_all_types() {
        let mut r = RecordBuf::new();
        r.put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(1 << 40)
            .put_f32(1.5)
            .put_f64(-2.25);
        let mut rd = PayloadReader::new(r.as_slice());
        assert_eq!(rd.read_u8(), Some(7));
        assert_eq!(rd.read_u16(), Some(300));
        assert_eq!(rd.read_u32(), Some(70_000));
        assert_eq!(rd.read_u64(), Some(1 << 40));
        assert_eq!(rd.read_f32(), Some(1.5));
        assert_eq!(rd.read_f64(), Some(-2.25));
        assert!(rd.is_empty());
        assert_eq!(rd.read_u8(), None);
    }

    #[test]
    fn checked_converters_accept_max_and_reject_above() {
        assert_eq!(u16_of(65_535, "count"), Ok(65_535));
        let e = u16_of(65_536, "count").unwrap_err();
        assert_eq!((e.field, e.value, e.max), ("count", 65_536, 65_535));
        assert!(e.to_string().contains("count"));
        assert_eq!(u8_of(255, "len"), Ok(255));
        assert!(u8_of(256, "len").is_err());
        assert_eq!(u32_of(u32::MAX as usize, "off"), Ok(u32::MAX));
        assert!(u32_of(u32::MAX as usize + 1, "off").is_err());
    }

    #[test]
    fn reader_short_buffer_returns_none() {
        let buf = [1u8, 2, 3];
        let mut rd = PayloadReader::new(&buf);
        assert_eq!(rd.read_u32(), None);
        assert_eq!(rd.read_u16(), Some(0x0201));
        assert_eq!(rd.remaining(), 1);
    }
}
