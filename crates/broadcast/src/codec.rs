//! Record-aligned payload encoding.
//!
//! Broadcast content is a sequence of *records* (a node's adjacency list,
//! one w×w square of EB's distance matrix, one row range of an NR local
//! index, ...). Records never straddle packet boundaries: §6.2 argues for
//! placing separable pieces of information in separate packets so that one
//! lost packet costs only the records inside it. [`RecordWriter`] enforces
//! the discipline at encode time; [`PayloadReader`] is the matching
//! little-endian cursor used by the simulated clients to decode payloads
//! they received.

use crate::packet::PAYLOAD_CAPACITY;
use bytes::Bytes;

/// Splits a byte stream into packet payloads along record boundaries.
#[derive(Debug)]
pub struct RecordWriter {
    capacity: usize,
    payloads: Vec<Bytes>,
    current: Vec<u8>,
}

impl Default for RecordWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordWriter {
    /// Writer with the standard payload capacity.
    pub fn new() -> Self {
        Self::with_capacity(PAYLOAD_CAPACITY)
    }

    /// Writer with a custom capacity (tests use small capacities).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            payloads: Vec::new(),
            current: Vec::with_capacity(capacity),
        }
    }

    /// Appends one record. Panics if the record alone exceeds a payload —
    /// encoders must split their records below the capacity.
    pub fn push_record(&mut self, rec: &[u8]) {
        assert!(
            rec.len() <= self.capacity,
            "record of {} bytes exceeds payload capacity {}",
            rec.len(),
            self.capacity
        );
        if self.current.len() + rec.len() > self.capacity {
            self.flush();
        }
        self.current.extend_from_slice(rec);
    }

    /// Ends the current packet (subsequent records start a new one).
    pub fn flush(&mut self) {
        if !self.current.is_empty() {
            self.payloads
                .push(Bytes::from(std::mem::take(&mut self.current)));
        }
    }

    /// Number of payloads produced so far if finished now.
    pub fn packet_count(&self) -> usize {
        self.payloads.len() + usize::from(!self.current.is_empty())
    }

    /// Finishes and returns the payloads.
    pub fn finish(mut self) -> Vec<Bytes> {
        self.flush();
        self.payloads
    }
}

/// Little-endian read cursor over one payload.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the payload is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Reads a `u8`.
    pub fn read_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Option<f32> {
        self.take(4)
            .map(|s| f32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|s| f64::from_le_bytes(s.try_into().unwrap()))
    }
}

/// Record-construction helper mirroring [`PayloadReader`].
#[derive(Debug, Default)]
pub struct RecordBuf {
    bytes: Vec<u8>,
}

impl RecordBuf {
    /// Empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.bytes.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Current encoded size.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Clears for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_never_straddle_packets() {
        let mut w = RecordWriter::with_capacity(10);
        for i in 0..20u8 {
            w.push_record(&[i; 4]);
        }
        let payloads = w.finish();
        // 2 records of 4 bytes fit per 10-byte payload.
        assert_eq!(payloads.len(), 10);
        for p in &payloads {
            assert_eq!(p.len() % 4, 0);
            assert!(p.len() <= 10);
        }
    }

    #[test]
    fn explicit_flush_starts_new_packet() {
        let mut w = RecordWriter::with_capacity(100);
        w.push_record(b"abc");
        w.flush();
        w.push_record(b"def");
        let payloads = w.finish();
        assert_eq!(payloads.len(), 2);
        assert_eq!(&payloads[0][..], b"abc");
        assert_eq!(&payloads[1][..], b"def");
    }

    #[test]
    #[should_panic(expected = "exceeds payload capacity")]
    fn oversized_record_panics() {
        let mut w = RecordWriter::with_capacity(4);
        w.push_record(&[0; 5]);
    }

    #[test]
    fn packet_count_tracks_pending() {
        let mut w = RecordWriter::with_capacity(8);
        assert_eq!(w.packet_count(), 0);
        w.push_record(&[0; 4]);
        assert_eq!(w.packet_count(), 1);
        w.push_record(&[0; 4]);
        assert_eq!(w.packet_count(), 1);
        w.push_record(&[0; 4]);
        assert_eq!(w.packet_count(), 2);
    }

    #[test]
    fn reader_round_trips_all_types() {
        let mut r = RecordBuf::new();
        r.put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(1 << 40)
            .put_f32(1.5)
            .put_f64(-2.25);
        let mut rd = PayloadReader::new(r.as_slice());
        assert_eq!(rd.read_u8(), Some(7));
        assert_eq!(rd.read_u16(), Some(300));
        assert_eq!(rd.read_u32(), Some(70_000));
        assert_eq!(rd.read_u64(), Some(1 << 40));
        assert_eq!(rd.read_f32(), Some(1.5));
        assert_eq!(rd.read_f64(), Some(-2.25));
        assert!(rd.is_empty());
        assert_eq!(rd.read_u8(), None);
    }

    #[test]
    fn reader_short_buffer_returns_none() {
        let buf = [1u8, 2, 3];
        let mut rd = PayloadReader::new(&buf);
        assert_eq!(rd.read_u32(), None);
        assert_eq!(rd.read_u16(), Some(0x0201));
        assert_eq!(rd.remaining(), 1);
    }
}
