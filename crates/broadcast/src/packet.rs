//! Fixed-size broadcast packets.
//!
//! The paper fixes the packet size to 128 bytes (§7) and requires that
//! "every packet, regardless of its contents, includes a pointer (offset)
//! to the next copy of the index in the broadcast cycle" (§4.1 for EB;
//! §5.2 needs the analogous pointer to the next *local* index for NR).
//! The header here is 5 bytes — a kind tag plus that 4-byte offset —
//! leaving [`PAYLOAD_CAPACITY`] bytes of payload.

use bytes::Bytes;

/// Total packet size in bytes (paper §7).
pub const PACKET_SIZE: usize = 128;

/// Header: 1 byte kind + 4 bytes next-index offset.
pub const HEADER_SIZE: usize = 5;

/// Payload bytes available per packet.
pub const PAYLOAD_CAPACITY: usize = PACKET_SIZE - HEADER_SIZE;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes` — the
/// link-layer frame check every real broadcast medium appends. At this
/// frame length (1024 bits « the polynomial's 91607-bit HD-4 bound) it
/// detects **all** 1-, 2- and 3-bit errors, which is what makes injected
/// bit corruption *detectable* rather than silently decoded: a frame
/// whose CRC fails surfaces as [`crate::channel::Received::Corrupted`].
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Coarse content tag, used by clients to sanity-check what they decode
/// and by tests to assert cycle layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketKind {
    /// Global index packets (kd splits, EB matrix, offset table, ...).
    Index = 0,
    /// Region-local index packets (NR's `A^m` arrays).
    LocalIndex = 1,
    /// Network data packets (adjacency records).
    Data = 2,
    /// Auxiliary per-node precomputed info (ArcFlag vectors, landmark
    /// distance vectors, SPQ quadtrees), kept in separate packets from the
    /// adjacency data per §6.2.
    Aux = 3,
    /// Delta-broadcast weight updates for dynamic worlds: versioned edge
    /// patches a client applies to its received arena instead of
    /// re-tuning from scratch.
    Patch = 4,
}

impl PacketKind {
    /// Parses the kind byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(PacketKind::Index),
            1 => Some(PacketKind::LocalIndex),
            2 => Some(PacketKind::Data),
            3 => Some(PacketKind::Aux),
            4 => Some(PacketKind::Patch),
            _ => None,
        }
    }
}

/// One broadcast packet.
///
/// `next_index` is the number of packets between this one and the start of
/// the next index copy (0 = the next packet). A relative offset keeps the
/// pointer meaningful across cycle boundaries, since the same cycle repeats
/// forever.
#[derive(Debug, Clone)]
pub struct Packet {
    kind: PacketKind,
    next_index: u32,
    payload: Bytes,
}

impl Packet {
    /// Creates a packet; panics if the payload exceeds the capacity.
    pub fn new(kind: PacketKind, next_index: u32, payload: Bytes) -> Self {
        assert!(
            payload.len() <= PAYLOAD_CAPACITY,
            "payload {} exceeds capacity {}",
            payload.len(),
            PAYLOAD_CAPACITY
        );
        Self {
            kind,
            next_index,
            payload,
        }
    }

    /// Content tag.
    #[inline]
    pub fn kind(&self) -> PacketKind {
        self.kind
    }

    /// Packets until the next index copy (0 = next packet starts one).
    #[inline]
    pub fn next_index(&self) -> u32 {
        self.next_index
    }

    /// Payload bytes.
    #[inline]
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Re-stamps the next-index pointer (done once the final cycle layout
    /// is known).
    pub(crate) fn set_next_index(&mut self, v: u32) {
        self.next_index = v;
    }

    /// The frame's link-layer CRC-32 (over the padded wire image).
    pub fn checksum(&self) -> u32 {
        crc32(&self.to_wire())
    }

    /// Serializes to the 128-byte wire format (zero-padded payload).
    pub fn to_wire(&self) -> [u8; PACKET_SIZE] {
        let mut out = [0u8; PACKET_SIZE];
        out[0] = self.kind as u8;
        out[1..5].copy_from_slice(&self.next_index.to_le_bytes());
        out[HEADER_SIZE..HEADER_SIZE + self.payload.len()].copy_from_slice(&self.payload);
        out
    }

    /// Parses the wire format; `len` gives the meaningful payload length
    /// (the wire format itself is always padded to 128 bytes).
    pub fn from_wire(wire: &[u8; PACKET_SIZE], len: usize) -> Option<Self> {
        let kind = PacketKind::from_u8(wire[0])?;
        let next_index = u32::from_le_bytes(wire[1..5].try_into().ok()?);
        if len > PAYLOAD_CAPACITY {
            return None;
        }
        Some(Self {
            kind,
            next_index,
            payload: Bytes::copy_from_slice(&wire[HEADER_SIZE..HEADER_SIZE + len]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_arithmetic() {
        assert_eq!(PACKET_SIZE, 128);
        assert_eq!(PAYLOAD_CAPACITY, 123);
    }

    #[test]
    fn wire_round_trip() {
        let p = Packet::new(PacketKind::Data, 17, Bytes::from_static(b"hello broadcast"));
        let wire = p.to_wire();
        let q = Packet::from_wire(&wire, p.payload().len()).unwrap();
        assert_eq!(q.kind(), PacketKind::Data);
        assert_eq!(q.next_index(), 17);
        assert_eq!(q.payload(), p.payload());
    }

    #[test]
    fn kind_round_trip() {
        for k in [
            PacketKind::Index,
            PacketKind::LocalIndex,
            PacketKind::Data,
            PacketKind::Aux,
            PacketKind::Patch,
        ] {
            assert_eq!(PacketKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(PacketKind::from_u8(9), None);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_payload_rejected() {
        Packet::new(
            PacketKind::Data,
            0,
            Bytes::from(vec![0u8; PAYLOAD_CAPACITY + 1]),
        );
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checksum_changes_under_any_small_bit_flip() {
        let p = Packet::new(PacketKind::Data, 17, Bytes::from_static(b"hello broadcast"));
        let wire = p.to_wire();
        let base = crc32(&wire);
        assert_eq!(p.checksum(), base);
        for bit in 0..PACKET_SIZE * 8 {
            let mut w = wire;
            w[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&w), base, "single-bit flip at {bit} undetected");
        }
    }

    #[test]
    fn full_payload_accepted() {
        let p = Packet::new(
            PacketKind::Index,
            0,
            Bytes::from(vec![7u8; PAYLOAD_CAPACITY]),
        );
        assert_eq!(p.payload().len(), PAYLOAD_CAPACITY);
    }
}
