//! The performance factors of §3.1, as measured quantities.
//!
//! * **Tuning time** — packets the client listened to (drives energy);
//! * **Access latency** — packets elapsed between posing the query and the
//!   last packet needed (drives responsiveness);
//! * **Memory** — peak bytes the client retained (the J2ME heap is 8 MB);
//! * **CPU time** — wall-clock time of client-side computation.
//!
//! Memory is tracked by explicit accounting ([`MemoryMeter`]): the
//! simulated clients charge every structure they retain (received
//! adjacency lists, index arrays, search state) and release what they
//! discard, mirroring how the paper measures heap utilization.

use std::time::{Duration, Instant};

/// Aggregated measurements of one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Packets received (paper: tuning time).
    pub tuning_packets: u64,
    /// Packets elapsed from tune-in until processing could finish
    /// (paper: access latency).
    pub latency_packets: u64,
    /// Packets slept through (latency − tuning).
    pub sleep_packets: u64,
    /// Peak retained client memory in bytes.
    pub peak_memory_bytes: usize,
    /// Client-side computation time.
    pub cpu: Duration,
    /// Dijkstra work done by the client (settled nodes), for CPU-model
    /// cross-checks.
    pub settled_nodes: u64,
}

impl QueryStats {
    /// Merges per-query stats into an accumulating average-friendly sum.
    pub fn add(&mut self, other: &QueryStats) {
        self.tuning_packets += other.tuning_packets;
        self.latency_packets += other.latency_packets;
        self.sleep_packets += other.sleep_packets;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        self.cpu += other.cpu;
        self.settled_nodes += other.settled_nodes;
    }
}

/// Explicit byte accounting with peak tracking.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryMeter {
    current: usize,
    peak: usize,
}

impl MemoryMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bytes` of retained memory.
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Releases `bytes` (saturating: double-free clamps at zero).
    pub fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Currently retained bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak retained bytes so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// Accumulating wall-clock meter for client-side computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuMeter {
    total: Duration,
}

impl CpuMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and adds its duration.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        out
    }

    /// Total accumulated computation time.
    pub fn total(&self) -> Duration {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_meter_tracks_peak() {
        let mut m = MemoryMeter::new();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.current(), 150);
        m.free(120);
        assert_eq!(m.current(), 30);
        m.alloc(40);
        assert_eq!(m.peak(), 150);
        assert_eq!(m.current(), 70);
    }

    #[test]
    fn memory_meter_free_saturates() {
        let mut m = MemoryMeter::new();
        m.alloc(10);
        m.free(100);
        assert_eq!(m.current(), 0);
        assert_eq!(m.peak(), 10);
    }

    #[test]
    fn cpu_meter_accumulates() {
        let mut c = CpuMeter::new();
        let v = c.time(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(c.total() >= Duration::from_millis(2));
        let before = c.total();
        c.time(|| ());
        assert!(c.total() >= before);
    }

    #[test]
    fn stats_add_merges() {
        let mut a = QueryStats {
            tuning_packets: 10,
            latency_packets: 20,
            sleep_packets: 10,
            peak_memory_bytes: 500,
            cpu: Duration::from_millis(1),
            settled_nodes: 7,
        };
        let b = QueryStats {
            tuning_packets: 5,
            latency_packets: 8,
            sleep_packets: 3,
            peak_memory_bytes: 900,
            cpu: Duration::from_millis(2),
            settled_nodes: 3,
        };
        a.add(&b);
        assert_eq!(a.tuning_packets, 15);
        assert_eq!(a.latency_packets, 28);
        assert_eq!(a.peak_memory_bytes, 900);
        assert_eq!(a.cpu, Duration::from_millis(3));
        assert_eq!(a.settled_nodes, 10);
    }
}
