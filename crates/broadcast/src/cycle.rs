//! Broadcast cycle assembly.
//!
//! A broadcast cycle is the fixed packet sequence the server repeats
//! forever. Methods assemble theirs through [`CycleBuilder`], declaring
//! *segments* (an index copy, one region's data, ...). When the final
//! layout is known the builder stamps every packet's next-index pointer —
//! the "pointer to the next copy of the index" that §4.1/§5.2 require on
//! every packet — as a cyclic forward distance, so it works from any
//! tune-in position across cycle boundaries.

use crate::packet::{Packet, PacketKind};
use bytes::Bytes;

/// What a segment of the cycle carries. `u16` payloads are region numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A copy of the global index (EB; also the (1,m) baselines).
    GlobalIndex,
    /// A region-local index (NR's `A^m`, broadcast just before region m).
    LocalIndex(u16),
    /// Adjacency data of one region (cross-border or whole).
    RegionData(u16),
    /// The local-node segment of one region (EB's split of §4.1).
    RegionLocalData(u16),
    /// Whole-network adjacency data (methods without partitioning).
    NetworkData,
    /// Per-node auxiliary data (flags / distance vectors / quadtrees).
    AuxData,
    /// The directory of one patch cycle: version stamps plus per-region
    /// offsets into the patch data (dynamic worlds).
    PatchIndex,
    /// Versioned weight deltas of one region (dynamic worlds).
    PatchData(u16),
}

impl SegmentKind {
    /// Whether tuning to this segment's start yields an index copy.
    fn is_index(&self) -> bool {
        matches!(
            self,
            SegmentKind::GlobalIndex | SegmentKind::LocalIndex(_) | SegmentKind::PatchIndex
        )
    }
}

/// A contiguous packet range of one kind within the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Content of the range.
    pub kind: SegmentKind,
    /// First packet offset.
    pub start: usize,
    /// Number of packets.
    pub len: usize,
}

/// An immutable, fully stamped broadcast cycle.
#[derive(Debug, Clone)]
pub struct BroadcastCycle {
    packets: Vec<Packet>,
    segments: Vec<Segment>,
}

impl BroadcastCycle {
    /// Rebuilds a cycle from already-stamped packets, in cycle order.
    ///
    /// This is the client-side entry point for transports that deliver a
    /// server's cycle packet by packet (the loopback daemon): the wire
    /// images round-trip through [`Packet::to_wire`]/[`Packet::from_wire`]
    /// with their next-index pointers intact, so no re-stamping happens
    /// here. The reconstructed cycle declares no segments — segment
    /// layout is a server-side construction artifact; clients navigate
    /// by packet pointers alone.
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        Self {
            packets,
            segments: Vec::new(),
        }
    }

    /// Number of packets in one cycle.
    #[inline]
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True for a zero-length cycle (never produced by real programs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Packet at cycle offset `pos`.
    #[inline]
    pub fn packet(&self, pos: usize) -> &Packet {
        &self.packets[pos]
    }

    /// Declared segments in broadcast order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// First segment matching `kind`.
    pub fn find_segment(&self, kind: SegmentKind) -> Option<Segment> {
        self.segments.iter().copied().find(|s| s.kind == kind)
    }

    /// Seconds one full cycle takes at `bits_per_sec` (Table 1's columns).
    pub fn duration_secs(&self, bits_per_sec: u64) -> f64 {
        self.len() as f64 * crate::packet::PACKET_SIZE as f64 * 8.0 / bits_per_sec as f64
    }
}

/// Builder collecting segments, then stamping pointers.
#[derive(Debug, Default)]
pub struct CycleBuilder {
    packets: Vec<Packet>,
    segments: Vec<Segment>,
}

impl CycleBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment of payloads as packets of `packet_kind`.
    /// Returns the segment's start offset.
    pub fn push_segment(
        &mut self,
        kind: SegmentKind,
        packet_kind: PacketKind,
        payloads: Vec<Bytes>,
    ) -> usize {
        let start = self.packets.len();
        let len = payloads.len();
        for p in payloads {
            self.packets.push(Packet::new(packet_kind, 0, p));
        }
        self.segments.push(Segment { kind, start, len });
        start
    }

    /// Current cycle length in packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if no packets yet.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Stamps all next-index pointers and freezes the cycle.
    ///
    /// For a packet at offset `p`, the pointer is the cyclic distance to
    /// the start of the nearest *strictly later* index segment (so a
    /// client that just read a packet knows how long to sleep). Cycles
    /// with no index segments (plain Dijkstra) stamp `u32::MAX`.
    pub fn finish(mut self) -> BroadcastCycle {
        let n = self.packets.len();
        let mut index_starts: Vec<usize> = self
            .segments
            .iter()
            .filter(|s| s.kind.is_index() && s.len > 0)
            .map(|s| s.start)
            .collect();
        index_starts.sort_unstable();
        if index_starts.is_empty() {
            for p in &mut self.packets {
                p.set_next_index(u32::MAX);
            }
        } else {
            for pos in 0..n {
                // Distance to the first index start strictly after `pos`,
                // wrapping around the cycle.
                let next = match index_starts.binary_search(&(pos + 1)) {
                    Ok(i) => index_starts[i],
                    Err(i) if i < index_starts.len() => index_starts[i],
                    Err(_) => index_starts[0] + n,
                };
                self.packets[pos].set_next_index((next - pos - 1) as u32);
            }
        }
        BroadcastCycle {
            packets: self.packets,
            segments: self.segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize, byte: u8) -> Vec<Bytes> {
        (0..n).map(|_| Bytes::from(vec![byte; 4])).collect()
    }

    #[test]
    fn segments_record_layout() {
        let mut b = CycleBuilder::new();
        let s0 = b.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, payloads(3, 1));
        let s1 = b.push_segment(SegmentKind::RegionData(0), PacketKind::Data, payloads(5, 2));
        assert_eq!((s0, s1), (0, 3));
        let c = b.finish();
        assert_eq!(c.len(), 8);
        assert_eq!(c.segments().len(), 2);
        assert_eq!(c.find_segment(SegmentKind::RegionData(0)).unwrap().start, 3);
        assert!(c.find_segment(SegmentKind::AuxData).is_none());
    }

    #[test]
    fn pointer_points_to_next_index_copy() {
        // Layout: idx(2) data(3) idx(2) data(1) => starts at 0 and 5.
        let mut b = CycleBuilder::new();
        b.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, payloads(2, 1));
        b.push_segment(SegmentKind::RegionData(0), PacketKind::Data, payloads(3, 2));
        b.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, payloads(2, 3));
        b.push_segment(SegmentKind::RegionData(1), PacketKind::Data, payloads(1, 4));
        let c = b.finish();
        // pos: 0 1 2 3 4 5 6 7 ; index starts: {0, 5}
        let expect = [4u32, 3, 2, 1, 0, 2, 1, 0];
        for (pos, want) in expect.iter().enumerate() {
            assert_eq!(c.packet(pos).next_index(), *want, "pos {pos}");
        }
    }

    #[test]
    fn wraparound_pointer() {
        // Single index at the start: the last packet points all the way
        // around to offset 0 of the next cycle.
        let mut b = CycleBuilder::new();
        b.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, payloads(1, 1));
        b.push_segment(SegmentKind::NetworkData, PacketKind::Data, payloads(4, 2));
        let c = b.finish();
        assert_eq!(c.packet(0).next_index(), 4); // next cycle's index
        assert_eq!(c.packet(4).next_index(), 0);
    }

    #[test]
    fn no_index_stamps_sentinel() {
        let mut b = CycleBuilder::new();
        b.push_segment(SegmentKind::NetworkData, PacketKind::Data, payloads(3, 0));
        let c = b.finish();
        for pos in 0..3 {
            assert_eq!(c.packet(pos).next_index(), u32::MAX);
        }
    }

    #[test]
    fn local_index_counts_as_index() {
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::LocalIndex(0),
            PacketKind::LocalIndex,
            payloads(1, 1),
        );
        b.push_segment(SegmentKind::RegionData(0), PacketKind::Data, payloads(2, 2));
        b.push_segment(
            SegmentKind::LocalIndex(1),
            PacketKind::LocalIndex,
            payloads(1, 3),
        );
        b.push_segment(SegmentKind::RegionData(1), PacketKind::Data, payloads(2, 4));
        let c = b.finish();
        // Index starts: 0 and 3.
        assert_eq!(c.packet(0).next_index(), 2);
        assert_eq!(c.packet(1).next_index(), 1);
        assert_eq!(c.packet(3).next_index(), 2); // wraps to 0 (+6)
        assert_eq!(c.packet(5).next_index(), 0);
    }

    #[test]
    fn patch_index_counts_as_index() {
        // A patch cycle: directory first, then per-region deltas. Every
        // data packet must point back to the next directory copy so a
        // client tuning in mid-cycle can find the version stamp.
        let mut b = CycleBuilder::new();
        b.push_segment(SegmentKind::PatchIndex, PacketKind::Index, payloads(1, 1));
        b.push_segment(SegmentKind::PatchData(0), PacketKind::Patch, payloads(2, 2));
        b.push_segment(SegmentKind::PatchData(1), PacketKind::Patch, payloads(1, 3));
        let c = b.finish();
        assert_eq!(c.packet(0).next_index(), 3); // wraps to next cycle's directory
        assert_eq!(c.packet(1).next_index(), 2);
        assert_eq!(c.packet(3).next_index(), 0);
        assert_eq!(c.find_segment(SegmentKind::PatchData(1)).unwrap().start, 3);
    }

    #[test]
    fn duration_matches_rate() {
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            payloads(1000, 0),
        );
        let c = b.finish();
        // 1000 packets * 1024 bits / 2 Mbps = 0.512 s
        assert!((c.duration_secs(2_000_000) - 0.512).abs() < 1e-9);
    }
}
