//! Device and channel profiles (paper §3.1, §7).
//!
//! The evaluation simulates "a generic GPS-enabled clamshell phone
//! supporting the current J2ME standards: CLDC-1.1 and MIDP-2.1" with a
//! default heap of 8 MB, listening to a 3G channel at 2 Mbps (static) or
//! 384 Kbps (moving).

use crate::packet::PACKET_SIZE;
use serde::{Deserialize, Serialize};

/// Broadcast channel bit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelRate {
    /// Raw channel throughput.
    pub bits_per_sec: u64,
}

impl ChannelRate {
    /// Typical 3G rate for a static device (paper Table 1).
    pub const STATIC_3G: ChannelRate = ChannelRate {
        bits_per_sec: 2_000_000,
    };

    /// Typical 3G rate for a moving device (paper Table 1).
    pub const MOVING_3G: ChannelRate = ChannelRate {
        bits_per_sec: 384_000,
    };

    /// Seconds to transmit one packet.
    pub fn packet_secs(&self) -> f64 {
        (PACKET_SIZE * 8) as f64 / self.bits_per_sec as f64
    }

    /// Seconds to transmit `packets` packets.
    pub fn secs_for(&self, packets: u64) -> f64 {
        packets as f64 * self.packet_secs()
    }
}

/// A mobile client's hardware constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Application heap limit in bytes. A method is *applicable* on this
    /// device (Table 2) only if its peak client memory stays below this.
    pub heap_bytes: usize,
}

impl DeviceProfile {
    /// The paper's simulated J2ME clamshell phone (8 MB default heap).
    pub const J2ME_PHONE: DeviceProfile = DeviceProfile {
        name: "J2ME clamshell (CLDC-1.1 / MIDP-2.1)",
        heap_bytes: 8 * 1024 * 1024,
    };

    /// Whether a measured peak fits this device.
    pub fn fits(&self, peak_memory_bytes: usize) -> bool {
        peak_memory_bytes <= self.heap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_time_at_2mbps() {
        // 1024 bits / 2e6 bps = 0.512 ms
        let t = ChannelRate::STATIC_3G.packet_secs();
        assert!((t - 0.000512).abs() < 1e-12);
    }

    #[test]
    fn cycle_times_match_paper_table1_scale() {
        // Paper Table 1: Dijkstra cycle of 14019 packets takes 6.845 s at
        // 2 Mbps and ~40 s at 384 Kbps.
        let packets = 14_019u64;
        let fast = ChannelRate::STATIC_3G.secs_for(packets);
        let slow = ChannelRate::MOVING_3G.secs_for(packets);
        assert!((fast - 7.178).abs() < 0.4, "{fast}");
        assert!((slow - 37.4).abs() < 4.0, "{slow}");
    }

    #[test]
    fn j2me_heap_is_8mb() {
        assert_eq!(DeviceProfile::J2ME_PHONE.heap_bytes, 8 * 1024 * 1024);
        assert!(DeviceProfile::J2ME_PHONE.fits(7 * 1024 * 1024));
        assert!(!DeviceProfile::J2ME_PHONE.fits(9 * 1024 * 1024));
    }
}
