//! Deterministic fault injection beyond packet loss (§6.2 stress model).
//!
//! [`LossModel`](crate::channel::LossModel) erases packets; a
//! [`FaultPlan`] injects the *other* failure modes a broadcast client can
//! meet in the field:
//!
//! * **bit corruption** — a frame arrives, but some of its bits flipped in
//!   flight. The link layer's CRC-32 trailer ([`crate::packet::crc32`])
//!   catches every 1–3-bit error at this frame length (the IEEE 802.3
//!   polynomial has Hamming distance 4 up to ~91 kbit), so a corrupted
//!   frame is *detectable* and surfaces as
//!   [`Received::Corrupted`](crate::channel::Received::Corrupted), never
//!   as silently wrong payload bytes;
//! * **truncated cycles / server restarts** — the server aborts the
//!   current cycle mid-flight and restarts from offset 0, bumping the
//!   cycle version. Clients that slept across the restart wake to a
//!   phase-shifted schedule;
//! * **duplicated packets** — the previous slot's frame is delivered
//!   again (link-layer stutter);
//! * **stale-version packets** — after a restart, a frame from the
//!   pre-restart schedule leaks through (a repeater still draining its
//!   queue);
//! * **correlated window loss** — whole windows of the shared packet
//!   clock are wiped. Every client that shares the plan seed loses the
//!   *same* slots, which models fading hitting a flash crowd rather than
//!   independent per-client noise.
//!
//! Every draw is a pure function of the plan seed and the **absolute
//! packet clock** — like the Gilbert–Elliott chain, faults advance with
//! the channel, not with the client, so the fault stream is independent
//! of client behaviour (sleep patterns, retries) and of thread count.
//! [`FaultPlan::none`] is the identity: a channel built with it behaves
//! byte-for-byte like one built without a plan.

use crate::packet::{crc32, Packet, PACKET_SIZE};

/// SplitMix64 — the stateless per-slot hash behind every fault draw.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash value.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const TAG_CORRUPT: u64 = 0xC0_44_55;
const TAG_DUP: u64 = 0xD0_0B_1E;
const TAG_STALE: u64 = 0x57_A1_E0;
const TAG_RESTART: u64 = 0x4E_57_A4;
const TAG_LOSS: u64 = 0x10_55_C0;

/// A seeded, deterministic fault schedule for one channel session (or —
/// when the seed is shared — for a whole correlated population).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed all per-slot draws derive from.
    pub seed: u64,
    /// Per-packet probability the frame arrives bit-corrupted (CRC
    /// check fails; the client sees [`Received::Corrupted`]).
    ///
    /// [`Received::Corrupted`]: crate::channel::Received::Corrupted
    pub corrupt_rate: f64,
    /// Per-packet probability the previous slot's frame is delivered
    /// again instead of the scheduled one.
    pub duplicate_rate: f64,
    /// Per-packet probability (only meaningful after at least one
    /// restart) that a frame from the pre-restart schedule is delivered.
    pub stale_rate: f64,
    /// Mean packets between server restarts; 0 disables restarts.
    pub restart_mean_packets: f64,
    /// Correlated window loss as `(rate, window_packets)`: each aligned
    /// window of the absolute packet clock is wiped in its entirety with
    /// probability `rate`. `None` disables it.
    pub correlated_loss: Option<(f64, u64)>,
}

impl FaultPlan {
    /// The identity plan: no faults, and a channel built with it is
    /// byte-identical to one built without any plan.
    pub const fn none() -> Self {
        Self {
            seed: 0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            stale_rate: 0.0,
            restart_mean_packets: 0.0,
            correlated_loss: None,
        }
    }

    /// Whether this plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.corrupt_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.stale_rate == 0.0
            && self.restart_mean_packets == 0.0
            && self.correlated_loss.is_none()
    }

    /// A corruption-only plan.
    pub fn corruption(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "corrupt rate must be in [0,1]");
        Self {
            corrupt_rate: rate,
            seed,
            ..Self::none()
        }
    }

    /// A duplication-only plan.
    pub fn duplication(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "duplicate rate must be in [0,1]"
        );
        Self {
            duplicate_rate: rate,
            seed,
            ..Self::none()
        }
    }

    /// A restart-only plan: the server truncates the cycle roughly every
    /// `mean_packets` packets, with `stale_rate` of post-restart slots
    /// leaking pre-restart frames.
    pub fn restarts(mean_packets: f64, stale_rate: f64, seed: u64) -> Self {
        assert!(mean_packets >= 2.0, "restart mean must be >= 2 packets");
        assert!((0.0..=1.0).contains(&stale_rate), "stale rate in [0,1]");
        Self {
            restart_mean_packets: mean_packets,
            stale_rate,
            seed,
            ..Self::none()
        }
    }

    /// A correlated window-loss plan (flash-crowd fading): aligned
    /// windows of `window` packets are wiped with probability `rate`.
    pub fn correlated_loss(rate: f64, window: u64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0,1)");
        assert!(window >= 1, "window must be >= 1 packet");
        Self {
            correlated_loss: Some((rate, window)),
            seed,
            ..Self::none()
        }
    }

    /// Whether the slot at absolute clock `t` falls in a wiped window.
    #[inline]
    fn correlated_lost(&self, t: u64) -> bool {
        match self.correlated_loss {
            Some((rate, window)) => {
                unit(splitmix64(self.seed ^ TAG_LOSS ^ splitmix64(t / window))) < rate
            }
            None => false,
        }
    }

    /// Per-slot draw against `rate` for the given effect tag.
    #[inline]
    fn draw(&self, tag: u64, t: u64, rate: f64) -> bool {
        rate > 0.0 && unit(splitmix64(self.seed ^ tag ^ splitmix64(t))) < rate
    }

    /// The absolute clock of restart event `i` (0-based), or `None` if
    /// restarts are disabled. Gaps are `mean/2 + U[0, mean)` packets, so
    /// the schedule is aperiodic but seeded.
    fn restart_at(&self, i: u64) -> Option<u64> {
        if self.restart_mean_packets <= 0.0 {
            return None;
        }
        let mut t = 0u64;
        for k in 0..=i {
            let u = unit(splitmix64(self.seed ^ TAG_RESTART ^ splitmix64(k)));
            let gap = (self.restart_mean_packets * (0.5 + u)).max(2.0) as u64;
            t += gap;
        }
        Some(t)
    }
}

/// Per-session fault counters, read through
/// [`BroadcastChannel::fault_telemetry`](crate::channel::BroadcastChannel::fault_telemetry).
///
/// `corrupted` and `correlated_lost` frames are *client-detectable* (the
/// CRC fails / nothing arrives), so the §6.2 recovery paths handle them
/// like loss. `duplicates`, `stale` and `restarts` can silently hand a
/// position-trusting client the wrong frame — a supervisor must treat any
/// session with non-zero counts in those fields as untrusted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTelemetry {
    /// Frames delivered with a failed CRC check.
    pub corrupted: u64,
    /// Frames replaced by the previous slot's frame.
    pub duplicates: u64,
    /// Frames delivered from the pre-restart schedule.
    pub stale: u64,
    /// Server restarts (cycle truncations) the session lived through.
    pub restarts: u64,
    /// Frames wiped by correlated window loss.
    pub correlated_lost: u64,
}

impl FaultTelemetry {
    /// Whether any fault that can *silently* misdeliver content occurred
    /// (restarts shift the schedule under the client; duplicates and
    /// stale frames put wrong content at a trusted position).
    pub fn tainted(&self) -> bool {
        self.restarts > 0 || self.duplicates > 0 || self.stale > 0
    }

    /// Whether any fault at all was observed.
    pub fn any(&self) -> bool {
        self.tainted() || self.corrupted > 0 || self.correlated_lost > 0
    }
}

/// What the fault layer decided for one slot.
pub(crate) enum SlotDelivery {
    /// Deliver the frame at this (epoch-mapped) cycle offset.
    Deliver(usize),
    /// The slot fell in a wiped correlated-loss window.
    Wiped,
    /// The frame arrived bit-corrupted (CRC failed).
    Corrupted,
}

/// Live fault state of one channel session.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Absolute clock at which the current epoch (cycle version) began;
    /// epoch 0 starts at clock 0 with offset = clock % len.
    epoch_start: u64,
    /// Epoch start of the *previous* epoch (stale frames come from its
    /// schedule). Only meaningful when `version > 0`.
    prev_epoch_start: u64,
    /// Cycle version: restarts seen by the *server* up to the session's
    /// current clock.
    version: u32,
    /// Index of the next restart event in the plan's schedule.
    next_restart_idx: u64,
    /// Absolute clock of that event (`u64::MAX` when disabled).
    next_restart: u64,
    telemetry: FaultTelemetry,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, start: u64) -> Self {
        let mut s = Self {
            next_restart: plan.restart_at(0).unwrap_or(u64::MAX),
            plan,
            epoch_start: 0,
            prev_epoch_start: 0,
            version: 0,
            next_restart_idx: 0,
            telemetry: FaultTelemetry::default(),
        };
        // Restarts that predate the tune-in shape the schedule the client
        // arrives to, but are not *this* session's fault events.
        s.advance(start);
        s.telemetry.restarts = 0;
        s
    }

    /// Advances the server-side restart schedule to clock `t`.
    pub(crate) fn advance(&mut self, t: u64) {
        while self.next_restart <= t {
            self.prev_epoch_start = self.epoch_start;
            self.epoch_start = self.next_restart;
            self.version += 1;
            self.telemetry.restarts += 1;
            self.next_restart_idx += 1;
            self.next_restart = self
                .plan
                .restart_at(self.next_restart_idx)
                .unwrap_or(u64::MAX);
        }
    }

    /// The cycle offset the *current* schedule broadcasts at clock `t`.
    #[inline]
    pub(crate) fn offset_at(&self, t: u64, len: u64) -> usize {
        if self.version == 0 {
            (t % len) as usize
        } else {
            ((t - self.epoch_start.min(t)) % len) as usize
        }
    }

    /// The cycle offset the *previous* schedule would have broadcast.
    #[inline]
    fn prev_offset_at(&self, t: u64, len: u64) -> usize {
        if self.version <= 1 {
            (t % len) as usize
        } else {
            ((t - self.prev_epoch_start.min(t)) % len) as usize
        }
    }

    /// Decides what slot `t` delivers. `len` is the cycle length.
    pub(crate) fn deliver(&mut self, t: u64, len: u64) -> SlotDelivery {
        self.advance(t);
        if self.plan.correlated_lost(t) {
            self.telemetry.correlated_lost += 1;
            return SlotDelivery::Wiped;
        }
        if self.plan.draw(TAG_CORRUPT, t, self.plan.corrupt_rate) {
            self.telemetry.corrupted += 1;
            return SlotDelivery::Corrupted;
        }
        if self.version > 0 && self.plan.draw(TAG_STALE, t, self.plan.stale_rate) {
            self.telemetry.stale += 1;
            return SlotDelivery::Deliver(self.prev_offset_at(t, len));
        }
        if self.plan.draw(TAG_DUP, t, self.plan.duplicate_rate) {
            self.telemetry.duplicates += 1;
            return SlotDelivery::Deliver(self.offset_at(t.saturating_sub(1), len));
        }
        SlotDelivery::Deliver(self.offset_at(t, len))
    }

    pub(crate) fn telemetry(&self) -> FaultTelemetry {
        self.telemetry
    }

    pub(crate) fn plan(&self) -> FaultPlan {
        self.plan
    }

    pub(crate) fn version(&self) -> u32 {
        self.version
    }

    /// Corrupts the frame's wire image at slot `t` and checks whether the
    /// link-layer CRC catches it. With 1–3 flipped bits in a 128-byte
    /// frame it always does (CRC-32 has Hamming distance 4 here), so the
    /// return value is `true` in practice; it is computed — not assumed —
    /// to keep the detectability claim honest.
    pub(crate) fn corruption_detected(plan: &FaultPlan, t: u64, pkt: &Packet) -> bool {
        let mut wire = pkt.to_wire();
        let original = crc32(&wire);
        let h = splitmix64(plan.seed ^ TAG_CORRUPT ^ splitmix64(t) ^ 0xB17F);
        let flips = 1 + (h % 3) as usize;
        // Distinct positions: flipping the same bit twice would cancel.
        let mut bits = [usize::MAX; 3];
        let mut chosen = 0usize;
        let mut draw = 0u64;
        while chosen < flips {
            draw += 1;
            let bit = (splitmix64(h ^ draw) % (PACKET_SIZE as u64 * 8)) as usize;
            if !bits[..chosen].contains(&bit) {
                bits[chosen] = bit;
                chosen += 1;
            }
        }
        for &bit in &bits[..flips] {
            wire[bit / 8] ^= 1 << (bit % 8);
        }
        crc32(&wire) != original
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use bytes::Bytes;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::corruption(0.1, 1).is_none());
        assert!(!FaultPlan::duplication(0.1, 1).is_none());
        assert!(!FaultPlan::restarts(100.0, 0.0, 1).is_none());
        assert!(!FaultPlan::correlated_loss(0.1, 8, 1).is_none());
    }

    #[test]
    fn draws_are_pure_slot_functions() {
        let p = FaultPlan::corruption(0.3, 42);
        for t in 0..256 {
            assert_eq!(
                p.draw(TAG_CORRUPT, t, p.corrupt_rate),
                p.draw(TAG_CORRUPT, t, p.corrupt_rate)
            );
        }
        let q = FaultPlan::corruption(0.3, 43);
        let a: Vec<bool> = (0..512).map(|t| p.draw(TAG_CORRUPT, t, 0.3)).collect();
        let b: Vec<bool> = (0..512).map(|t| q.draw(TAG_CORRUPT, t, 0.3)).collect();
        assert_ne!(a, b, "different seeds give different fault streams");
    }

    #[test]
    fn correlated_loss_wipes_whole_windows() {
        let p = FaultPlan::correlated_loss(0.2, 16, 7);
        let mut wiped_windows = 0usize;
        for w in 0..2_000u64 {
            let states: Vec<bool> = (w * 16..(w + 1) * 16)
                .map(|t| p.correlated_lost(t))
                .collect();
            assert!(
                states.iter().all(|&s| s == states[0]),
                "window {w} not uniform"
            );
            if states[0] {
                wiped_windows += 1;
            }
        }
        let rate = wiped_windows as f64 / 2_000.0;
        assert!((rate - 0.2).abs() < 0.05, "window wipe rate {rate}");
    }

    #[test]
    fn restart_schedule_is_increasing_and_seeded() {
        let p = FaultPlan::restarts(50.0, 0.0, 3);
        let times: Vec<u64> = (0..10).map(|i| p.restart_at(i).unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(
            times[0] >= 25 && times[0] <= 100,
            "first restart {}",
            times[0]
        );
        assert_eq!(
            FaultPlan::restarts(50.0, 0.0, 3).restart_at(5),
            p.restart_at(5)
        );
        assert_ne!(
            FaultPlan::restarts(50.0, 0.0, 4).restart_at(5),
            p.restart_at(5)
        );
    }

    #[test]
    fn fault_state_versions_bump_across_restarts() {
        let plan = FaultPlan::restarts(40.0, 0.0, 9);
        let mut s = FaultState::new(plan, 0);
        assert_eq!(s.version(), 0);
        s.advance(10_000);
        let v = s.version();
        assert!(v >= 100, "expected many restarts in 10k packets, got {v}");
        assert_eq!(s.telemetry().restarts, u64::from(v));
    }

    #[test]
    fn pre_tune_in_restarts_are_not_session_events() {
        let plan = FaultPlan::restarts(40.0, 0.0, 9);
        let s = FaultState::new(plan, 1_000);
        assert!(s.version() > 0, "schedule already shifted at tune-in");
        assert_eq!(s.telemetry().restarts, 0, "but no session event counted");
    }

    #[test]
    fn epoch_mapping_shifts_after_restart() {
        let plan = FaultPlan::restarts(1000.0, 0.0, 1);
        let mut s = FaultState::new(plan, 0);
        let first = plan.restart_at(0).unwrap();
        s.advance(first);
        assert_eq!(s.version(), 1);
        // Right at the restart the schedule is back at offset 0.
        assert_eq!(s.offset_at(first, 64), 0);
        assert_eq!(s.offset_at(first + 5, 64), 5);
    }

    #[test]
    fn corruption_is_always_detected_by_the_crc() {
        let pkt = Packet::new(PacketKind::Data, 7, Bytes::from_static(b"payload bytes"));
        let plan = FaultPlan::corruption(1.0, 77);
        for t in 0..4_096 {
            assert!(
                FaultState::corruption_detected(&plan, t, &pkt),
                "slot {t}: 1-3 bit flips must fail the CRC"
            );
        }
    }

    #[test]
    fn telemetry_taint_classes() {
        let clean = FaultTelemetry::default();
        assert!(!clean.tainted() && !clean.any());
        let corrupt = FaultTelemetry {
            corrupted: 3,
            ..Default::default()
        };
        assert!(!corrupt.tainted(), "corruption is detectable, not silent");
        assert!(corrupt.any());
        for t in [
            FaultTelemetry {
                duplicates: 1,
                ..Default::default()
            },
            FaultTelemetry {
                stale: 1,
                ..Default::default()
            },
            FaultTelemetry {
                restarts: 1,
                ..Default::default()
            },
        ] {
            assert!(t.tainted());
        }
    }
}
