//! The client's view of the broadcast channel.
//!
//! A [`BroadcastChannel`] session starts when the client tunes in at an
//! arbitrary instant (packet offset) and advances in whole packets: the
//! client either **receives** the current packet (costing tuning time and
//! receive energy, and possibly losing the packet to channel noise, §6.2)
//! or **sleeps** forward without listening. The same cycle repeats
//! forever, so sleeping past the cycle end simply continues into the next
//! broadcast cycle — exactly the behaviour NR relies on (§5.2: "if the end
//! of the current broadcast cycle is reached, another starts, and
//! processing continues as if it was the same cycle").

use crate::cycle::BroadcastCycle;
use crate::fault::{FaultPlan, FaultState, FaultTelemetry, SlotDelivery};
use crate::packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel noise model.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// Every packet arrives intact.
    Lossless,
    /// Each received packet is independently lost with probability `rate`
    /// (the paper evaluates 0.1%–10%, per \[15\]).
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        rate: f64,
        /// Seeded RNG for reproducible experiments.
        rng: StdRng,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain over packet
    /// slots (Good: intact, Bad: lost). Wireless losses cluster in bursts
    /// (\[15\]); this stresses the §6.2 recovery paths differently from
    /// i.i.d. noise — a burst can wipe out a contiguous index copy. The
    /// chain advances with the *packet clock*, including while the client
    /// sleeps, so the channel state at wake-up is independent of the
    /// client's behaviour.
    GilbertElliott {
        /// Good→Bad transition probability per packet slot.
        p_gb: f64,
        /// Bad→Good transition probability per packet slot.
        p_bg: f64,
        /// Currently in the Bad state.
        bad: bool,
        /// Packet-clock time the chain has been advanced to.
        advanced_to: u64,
        /// Seeded RNG for reproducible experiments.
        rng: StdRng,
    },
}

impl LossModel {
    /// Convenience constructor for a seeded Bernoulli model.
    pub fn bernoulli(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0,1]");
        LossModel::Bernoulli {
            rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Gilbert–Elliott model with stationary loss probability `rate` and
    /// mean burst length `burst` packets (`burst >= 1`; `burst = 1`
    /// degenerates to nearly-i.i.d. loss).
    pub fn bursty(rate: f64, burst: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0,1)");
        assert!(burst >= 1.0, "mean burst length must be >= 1 packet");
        let p_bg = 1.0 / burst;
        let p_gb = (rate / (1.0 - rate) * p_bg).min(1.0);
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            bad: false,
            advanced_to: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether the packet at time `now` is lost.
    fn lost(&mut self, now: u64) -> bool {
        match self {
            LossModel::Lossless => false,
            LossModel::Bernoulli { rate, rng } => rng.gen_bool(*rate),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                bad,
                advanced_to,
                rng,
            } => {
                // Step the chain through every packet slot up to `now`
                // (sleep included — the channel does not pause for us).
                while *advanced_to <= now {
                    let flip = if *bad {
                        rng.gen_bool(*p_bg)
                    } else {
                        rng.gen_bool(*p_gb)
                    };
                    if flip {
                        *bad = !*bad;
                    }
                    *advanced_to += 1;
                }
                *bad
            }
        }
    }
}

/// Outcome of listening to one packet.
#[derive(Debug, Clone)]
pub enum Received<'a> {
    /// The packet arrived intact.
    Packet(&'a Packet),
    /// Nothing usable arrived (erasure — channel noise or a wiped
    /// correlated-loss window).
    Lost,
    /// A frame arrived but its link-layer CRC failed: the contents
    /// (including the header pointer) are detectably garbage. Clients
    /// must treat this exactly like [`Received::Lost`] — the §6.2
    /// recovery paths re-fetch the slot in a later cycle — and never
    /// decode the payload.
    Corrupted,
}

impl<'a> Received<'a> {
    /// The packet, if it arrived intact. `Lost` and `Corrupted` both map
    /// to `None`, so every recovery path that retries missing slots
    /// transparently covers detected corruption too.
    pub fn ok(self) -> Option<&'a Packet> {
        match self {
            Received::Packet(p) => Some(p),
            Received::Lost | Received::Corrupted => None,
        }
    }
}

/// A tuned-in client session over a repeating broadcast cycle.
#[derive(Debug, Clone)]
pub struct BroadcastChannel<'a> {
    cycle: &'a BroadcastCycle,
    /// Global packet clock (monotonic across cycles).
    now: u64,
    start: u64,
    tuned: u64,
    loss: LossModel,
    /// Fault-injection state; `None` on the (default) fault-free path,
    /// which stays byte-identical to the pre-fault channel.
    faults: Option<FaultState>,
}

impl<'a> BroadcastChannel<'a> {
    /// Tunes in at cycle offset 0 with no loss.
    pub fn lossless(cycle: &'a BroadcastCycle) -> Self {
        Self::tune_in(cycle, 0, LossModel::Lossless)
    }

    /// Tunes in at an arbitrary cycle offset under the given loss model.
    pub fn tune_in(cycle: &'a BroadcastCycle, offset: usize, loss: LossModel) -> Self {
        assert!(!cycle.is_empty(), "cannot tune in to an empty cycle");
        let start = (offset % cycle.len()) as u64;
        Self {
            cycle,
            now: start,
            start,
            tuned: 0,
            loss,
            faults: None,
        }
    }

    /// Tunes in under a loss model *and* a [`FaultPlan`]. A
    /// [`FaultPlan::none`] plan takes the exact fault-free path —
    /// behaviour, RNG consumption and counters all byte-identical to
    /// [`BroadcastChannel::tune_in`].
    ///
    /// The tune-in `offset` doubles as the session's absolute packet
    /// clock, so clients that share a plan seed *and* tune in within one
    /// cycle experience the same fault stream at the same wall-clock
    /// slots — the correlated flash-crowd model.
    pub fn tune_in_with_faults(
        cycle: &'a BroadcastCycle,
        offset: usize,
        loss: LossModel,
        plan: FaultPlan,
    ) -> Self {
        let mut ch = Self::tune_in(cycle, offset, loss);
        if !plan.is_none() {
            ch.faults = Some(FaultState::new(plan, ch.now));
        }
        ch
    }

    /// Packets in one cycle.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.cycle.len()
    }

    /// Current offset within the cycle — under the *current* cycle
    /// version's schedule if the server has restarted (§6.2 fault model).
    #[inline]
    pub fn offset(&self) -> usize {
        match &self.faults {
            Some(f) => f.offset_at(self.now, self.cycle.len() as u64),
            None => (self.now % self.cycle.len() as u64) as usize,
        }
    }

    /// How many times the server restarted (truncating the cycle in
    /// flight) up to the session's current clock. 0 without faults.
    #[inline]
    pub fn cycle_version(&self) -> u32 {
        self.faults.as_ref().map_or(0, FaultState::version)
    }

    /// Per-session fault counters (all zero without a fault plan).
    #[inline]
    pub fn fault_telemetry(&self) -> FaultTelemetry {
        self.faults
            .as_ref()
            .map_or_else(FaultTelemetry::default, FaultState::telemetry)
    }

    /// Packets elapsed since tune-in (access latency so far).
    #[inline]
    pub fn elapsed(&self) -> u64 {
        self.now - self.start
    }

    /// Packets received so far (tuning time so far).
    #[inline]
    pub fn tuned(&self) -> u64 {
        self.tuned
    }

    /// Packets slept through so far.
    #[inline]
    pub fn slept(&self) -> u64 {
        self.elapsed() - self.tuned
    }

    /// Listens to the packet at the current offset and advances the clock.
    pub fn receive(&mut self) -> Received<'a> {
        if self.faults.is_some() {
            return self.receive_faulty();
        }
        let pkt = self.cycle.packet(self.offset());
        let at = self.now;
        self.now += 1;
        self.tuned += 1;
        if self.loss.lost(at) {
            Received::Lost
        } else {
            Received::Packet(pkt)
        }
    }

    /// The fault-injected receive path. The legacy loss model is drawn
    /// for every slot exactly as on the fault-free path (so layering a
    /// plan on top of a loss model perturbs neither stream); the fault
    /// plan then decides what the surviving frame actually is.
    fn receive_faulty(&mut self) -> Received<'a> {
        let len = self.cycle.len() as u64;
        let at = self.now;
        self.now += 1;
        self.tuned += 1;
        let lost = self.loss.lost(at);
        let faults = self.faults.as_mut().expect("fault path");
        if lost {
            // The frame never made it; only the server-side restart
            // schedule advances for this slot.
            faults.advance(at);
            return Received::Lost;
        }
        match faults.deliver(at, len) {
            SlotDelivery::Wiped => Received::Lost,
            SlotDelivery::Corrupted => {
                // Computed, not assumed: flip the seeded bits in the wire
                // image and let the CRC catch them (it always does for
                // 1-3 flips at this frame length).
                let plan = faults.plan();
                let off = faults.offset_at(at, len);
                debug_assert!(FaultState::corruption_detected(
                    &plan,
                    at,
                    self.cycle.packet(off)
                ));
                Received::Corrupted
            }
            SlotDelivery::Deliver(off) => Received::Packet(self.cycle.packet(off)),
        }
    }

    /// Sleeps through `packets` packets without listening.
    pub fn sleep(&mut self, packets: u64) {
        self.now += packets;
        if let Some(f) = self.faults.as_mut() {
            f.advance(self.now);
        }
    }

    /// Sleeps forward until the cycle offset equals `offset` (zero sleep if
    /// already there; a full cycle is never slept needlessly). The delta
    /// is computed under the schedule the client currently observes; a
    /// server restart during the sleep shifts the schedule under it —
    /// exactly the truncated-cycle fault clients must recover from.
    pub fn sleep_to_offset(&mut self, offset: usize) {
        let len = self.cycle.len() as u64;
        let target = (offset % self.cycle.len()) as u64;
        let cur = self.offset() as u64;
        let delta = (target + len - cur) % len;
        self.now += delta;
        if let Some(f) = self.faults.as_mut() {
            f.advance(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CycleBuilder, SegmentKind};
    use crate::packet::PacketKind;
    use bytes::Bytes;

    fn cycle(n: usize) -> BroadcastCycle {
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::GlobalIndex,
            PacketKind::Index,
            vec![Bytes::from(vec![0u8; 1])],
        );
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            (1..n).map(|i| Bytes::from(vec![i as u8; 1])).collect(),
        );
        b.finish()
    }

    #[test]
    fn receive_advances_and_counts() {
        let c = cycle(5);
        let mut ch = BroadcastChannel::lossless(&c);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 0);
        assert_eq!(ch.elapsed(), 1);
        assert_eq!(ch.tuned(), 1);
        assert_eq!(ch.slept(), 0);
    }

    #[test]
    fn sleep_costs_latency_not_tuning() {
        let c = cycle(10);
        let mut ch = BroadcastChannel::lossless(&c);
        ch.sleep(4);
        assert_eq!(ch.elapsed(), 4);
        assert_eq!(ch.tuned(), 0);
        assert_eq!(ch.slept(), 4);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 4);
    }

    #[test]
    fn wraps_to_next_cycle() {
        let c = cycle(4);
        let mut ch = BroadcastChannel::tune_in(&c, 3, LossModel::Lossless);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 3);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 0, "continued into next cycle");
    }

    #[test]
    fn sleep_to_offset_is_minimal() {
        let c = cycle(10);
        let mut ch = BroadcastChannel::tune_in(&c, 7, LossModel::Lossless);
        ch.sleep_to_offset(2); // 7 -> 2 wraps: 5 packets
        assert_eq!(ch.elapsed(), 5);
        assert_eq!(ch.offset(), 2);
        ch.sleep_to_offset(2); // already there: no-op
        assert_eq!(ch.elapsed(), 5);
    }

    #[test]
    fn lossless_never_loses() {
        let c = cycle(8);
        let mut ch = BroadcastChannel::lossless(&c);
        for _ in 0..100 {
            assert!(matches!(ch.receive(), Received::Packet(_)));
        }
    }

    #[test]
    fn bernoulli_loses_at_roughly_the_configured_rate() {
        let c = cycle(8);
        let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bernoulli(0.3, 42));
        let mut lost = 0;
        let n = 20_000;
        for _ in 0..n {
            if matches!(ch.receive(), Received::Lost) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
        // Lost packets still cost tuning time.
        assert_eq!(ch.tuned(), n as u64);
    }

    #[test]
    fn loss_is_reproducible_per_seed() {
        let c = cycle(8);
        let run = |seed| {
            let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bernoulli(0.5, seed));
            (0..64)
                .map(|_| matches!(ch.receive(), Received::Lost))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_rejected() {
        LossModel::bernoulli(1.5, 0);
    }

    #[test]
    fn bursty_loss_hits_the_target_rate() {
        let c = cycle(64);
        for &(rate, burst) in &[(0.05f64, 8.0f64), (0.10, 4.0), (0.01, 16.0)] {
            let mut lost = 0usize;
            let total = 200_000usize;
            let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bursty(rate, burst, 7));
            for _ in 0..total {
                if matches!(ch.receive(), Received::Lost) {
                    lost += 1;
                }
            }
            let measured = lost as f64 / total as f64;
            assert!(
                (measured - rate).abs() < rate * 0.25 + 0.002,
                "rate {rate} burst {burst}: measured {measured:.4}"
            );
        }
    }

    #[test]
    fn bursty_losses_cluster() {
        // Mean run length of consecutive losses should approach the
        // configured burst length, far above the Bernoulli value.
        let c = cycle(64);
        let mean_run = |model: LossModel| {
            let mut ch = BroadcastChannel::tune_in(&c, 0, model);
            let mut runs = Vec::new();
            let mut cur = 0usize;
            for _ in 0..400_000 {
                if matches!(ch.receive(), Received::Lost) {
                    cur += 1;
                } else if cur > 0 {
                    runs.push(cur);
                    cur = 0;
                }
            }
            runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64
        };
        let bursty = mean_run(LossModel::bursty(0.05, 10.0, 3));
        let iid = mean_run(LossModel::bernoulli(0.05, 3));
        assert!(bursty > 5.0, "bursty mean run {bursty:.2}");
        assert!(iid < 2.0, "iid mean run {iid:.2}");
    }

    #[test]
    fn none_fault_plan_is_byte_identical() {
        let c = cycle(16);
        let run = |with_plan: bool| {
            let loss = LossModel::bursty(0.2, 4.0, 5);
            let mut ch = if with_plan {
                BroadcastChannel::tune_in_with_faults(&c, 3, loss, FaultPlan::none())
            } else {
                BroadcastChannel::tune_in(&c, 3, loss)
            };
            let mut trace = Vec::new();
            for i in 0..200u64 {
                if i % 5 == 0 {
                    ch.sleep(i % 7);
                }
                trace.push(match ch.receive() {
                    Received::Packet(p) => p.payload()[0],
                    Received::Lost => 0xFE,
                    Received::Corrupted => 0xFF,
                });
            }
            (trace, ch.elapsed(), ch.tuned(), ch.fault_telemetry())
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(true).3, FaultTelemetry::default());
    }

    #[test]
    fn corruption_surfaces_as_corrupted_and_counts() {
        let c = cycle(8);
        let mut ch = BroadcastChannel::tune_in_with_faults(
            &c,
            0,
            LossModel::Lossless,
            FaultPlan::corruption(0.3, 9),
        );
        let mut corrupted = 0u64;
        for _ in 0..2_000 {
            if matches!(ch.receive(), Received::Corrupted) {
                corrupted += 1;
            }
        }
        assert!(corrupted > 400 && corrupted < 800, "corrupted {corrupted}");
        assert_eq!(ch.fault_telemetry().corrupted, corrupted);
        assert!(!ch.fault_telemetry().tainted(), "corruption is detectable");
    }

    #[test]
    fn duplicates_deliver_the_previous_slot() {
        let c = cycle(16);
        let mut ch = BroadcastChannel::tune_in_with_faults(
            &c,
            0,
            LossModel::Lossless,
            FaultPlan::duplication(0.25, 4),
        );
        let mut dups = 0u64;
        for i in 0..4_000u64 {
            let expected = (i % 16) as u8;
            if let Received::Packet(p) = ch.receive() {
                if p.payload()[0] != expected {
                    // A stutter delivers the frame one slot behind.
                    assert_eq!(u64::from(p.payload()[0]), (i + 16 - 1) % 16, "slot {i}");
                    dups += 1;
                }
            }
        }
        assert!(dups > 0);
        // Slot 0 has no previous slot: its stutter redelivers slot 0
        // itself, which the payload check cannot see.
        let counted = ch.fault_telemetry().duplicates;
        assert!(
            counted == dups || counted == dups + 1,
            "{counted} vs {dups}"
        );
        assert!(ch.fault_telemetry().tainted());
    }

    #[test]
    fn restarts_bump_the_version_and_shift_the_schedule() {
        let c = cycle(16);
        let mut ch = BroadcastChannel::tune_in_with_faults(
            &c,
            0,
            LossModel::Lossless,
            FaultPlan::restarts(40.0, 0.0, 2),
        );
        assert_eq!(ch.cycle_version(), 0);
        ch.sleep(10_000);
        assert!(ch.cycle_version() > 100);
        assert_eq!(u64::from(ch.cycle_version()), ch.fault_telemetry().restarts);
        // The observed schedule is phase-shifted but still a valid cycle:
        // consecutive receives walk consecutive offsets.
        let a = ch.receive().ok().map(|p| p.payload()[0]);
        let b = ch.receive().ok().map(|p| p.payload()[0]);
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(u64::from(b), (u64::from(a) + 1) % 16);
        }
    }

    #[test]
    fn correlated_loss_is_shared_across_clients() {
        // Two clients sharing the plan seed, tuned in at different
        // offsets, lose exactly the same absolute slots — the
        // flash-crowd fading model.
        let c = cycle(16);
        let plan = FaultPlan::correlated_loss(0.3, 4, 31);
        let lost_slots = |offset: usize| {
            let mut ch =
                BroadcastChannel::tune_in_with_faults(&c, offset, LossModel::Lossless, plan);
            let mut lost = Vec::new();
            for _ in 0..500 {
                let at = ch.elapsed() + offset as u64;
                if matches!(ch.receive(), Received::Lost) {
                    lost.push(at);
                }
            }
            lost
        };
        let a = lost_slots(0);
        let b = lost_slots(5);
        let a_set: std::collections::HashSet<u64> = a.into_iter().collect();
        let shared: Vec<u64> = b.iter().filter(|t| a_set.contains(t)).copied().collect();
        // Every slot client B lost in the overlapping clock range was
        // also lost by client A.
        let overlap: Vec<u64> = b
            .iter()
            .filter(|&&t| (5..500).contains(&t))
            .copied()
            .collect();
        assert!(!overlap.is_empty());
        assert_eq!(shared.len(), overlap.len());
    }

    #[test]
    fn bursty_state_advances_through_sleep() {
        // Two clients with the same seed, one sleeping 1000 packets
        // between receives: the chain state must not freeze during
        // sleep, i.e. the sleeper's loss pattern differs from a
        // back-to-back receiver's at the same receive indexes.
        let c = cycle(16);
        let pattern = |sleep: u64| {
            let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bursty(0.3, 6.0, 11));
            (0..64)
                .map(|_| {
                    let r = matches!(ch.receive(), Received::Lost);
                    ch.sleep(sleep);
                    r
                })
                .collect::<Vec<bool>>()
        };
        assert_ne!(pattern(0), pattern(1000));
    }
}
