//! The client's view of the broadcast channel.
//!
//! A [`BroadcastChannel`] session starts when the client tunes in at an
//! arbitrary instant (packet offset) and advances in whole packets: the
//! client either **receives** the current packet (costing tuning time and
//! receive energy, and possibly losing the packet to channel noise, §6.2)
//! or **sleeps** forward without listening. The same cycle repeats
//! forever, so sleeping past the cycle end simply continues into the next
//! broadcast cycle — exactly the behaviour NR relies on (§5.2: "if the end
//! of the current broadcast cycle is reached, another starts, and
//! processing continues as if it was the same cycle").

use crate::cycle::BroadcastCycle;
use crate::packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel noise model.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// Every packet arrives intact.
    Lossless,
    /// Each received packet is independently lost with probability `rate`
    /// (the paper evaluates 0.1%–10%, per \[15\]).
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        rate: f64,
        /// Seeded RNG for reproducible experiments.
        rng: StdRng,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain over packet
    /// slots (Good: intact, Bad: lost). Wireless losses cluster in bursts
    /// (\[15\]); this stresses the §6.2 recovery paths differently from
    /// i.i.d. noise — a burst can wipe out a contiguous index copy. The
    /// chain advances with the *packet clock*, including while the client
    /// sleeps, so the channel state at wake-up is independent of the
    /// client's behaviour.
    GilbertElliott {
        /// Good→Bad transition probability per packet slot.
        p_gb: f64,
        /// Bad→Good transition probability per packet slot.
        p_bg: f64,
        /// Currently in the Bad state.
        bad: bool,
        /// Packet-clock time the chain has been advanced to.
        advanced_to: u64,
        /// Seeded RNG for reproducible experiments.
        rng: StdRng,
    },
}

impl LossModel {
    /// Convenience constructor for a seeded Bernoulli model.
    pub fn bernoulli(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0,1]");
        LossModel::Bernoulli {
            rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Gilbert–Elliott model with stationary loss probability `rate` and
    /// mean burst length `burst` packets (`burst >= 1`; `burst = 1`
    /// degenerates to nearly-i.i.d. loss).
    pub fn bursty(rate: f64, burst: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0,1)");
        assert!(burst >= 1.0, "mean burst length must be >= 1 packet");
        let p_bg = 1.0 / burst;
        let p_gb = (rate / (1.0 - rate) * p_bg).min(1.0);
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            bad: false,
            advanced_to: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether the packet at time `now` is lost.
    fn lost(&mut self, now: u64) -> bool {
        match self {
            LossModel::Lossless => false,
            LossModel::Bernoulli { rate, rng } => rng.gen_bool(*rate),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                bad,
                advanced_to,
                rng,
            } => {
                // Step the chain through every packet slot up to `now`
                // (sleep included — the channel does not pause for us).
                while *advanced_to <= now {
                    let flip = if *bad {
                        rng.gen_bool(*p_bg)
                    } else {
                        rng.gen_bool(*p_gb)
                    };
                    if flip {
                        *bad = !*bad;
                    }
                    *advanced_to += 1;
                }
                *bad
            }
        }
    }
}

/// Outcome of listening to one packet.
#[derive(Debug, Clone)]
pub enum Received<'a> {
    /// The packet arrived intact.
    Packet(&'a Packet),
    /// The packet was corrupted/lost; its contents (including the header
    /// pointer) are unusable.
    Lost,
}

impl<'a> Received<'a> {
    /// The packet, if it arrived.
    pub fn ok(self) -> Option<&'a Packet> {
        match self {
            Received::Packet(p) => Some(p),
            Received::Lost => None,
        }
    }
}

/// A tuned-in client session over a repeating broadcast cycle.
#[derive(Debug, Clone)]
pub struct BroadcastChannel<'a> {
    cycle: &'a BroadcastCycle,
    /// Global packet clock (monotonic across cycles).
    now: u64,
    start: u64,
    tuned: u64,
    loss: LossModel,
}

impl<'a> BroadcastChannel<'a> {
    /// Tunes in at cycle offset 0 with no loss.
    pub fn lossless(cycle: &'a BroadcastCycle) -> Self {
        Self::tune_in(cycle, 0, LossModel::Lossless)
    }

    /// Tunes in at an arbitrary cycle offset under the given loss model.
    pub fn tune_in(cycle: &'a BroadcastCycle, offset: usize, loss: LossModel) -> Self {
        assert!(!cycle.is_empty(), "cannot tune in to an empty cycle");
        let start = (offset % cycle.len()) as u64;
        Self {
            cycle,
            now: start,
            start,
            tuned: 0,
            loss,
        }
    }

    /// Packets in one cycle.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.cycle.len()
    }

    /// Current offset within the cycle.
    #[inline]
    pub fn offset(&self) -> usize {
        (self.now % self.cycle.len() as u64) as usize
    }

    /// Packets elapsed since tune-in (access latency so far).
    #[inline]
    pub fn elapsed(&self) -> u64 {
        self.now - self.start
    }

    /// Packets received so far (tuning time so far).
    #[inline]
    pub fn tuned(&self) -> u64 {
        self.tuned
    }

    /// Packets slept through so far.
    #[inline]
    pub fn slept(&self) -> u64 {
        self.elapsed() - self.tuned
    }

    /// Listens to the packet at the current offset and advances the clock.
    pub fn receive(&mut self) -> Received<'a> {
        let pkt = self.cycle.packet(self.offset());
        let at = self.now;
        self.now += 1;
        self.tuned += 1;
        if self.loss.lost(at) {
            Received::Lost
        } else {
            Received::Packet(pkt)
        }
    }

    /// Sleeps through `packets` packets without listening.
    pub fn sleep(&mut self, packets: u64) {
        self.now += packets;
    }

    /// Sleeps forward until the cycle offset equals `offset` (zero sleep if
    /// already there; a full cycle is never slept needlessly).
    pub fn sleep_to_offset(&mut self, offset: usize) {
        let len = self.cycle.len() as u64;
        let target = (offset % self.cycle.len()) as u64;
        let cur = self.now % len;
        let delta = (target + len - cur) % len;
        self.now += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CycleBuilder, SegmentKind};
    use crate::packet::PacketKind;
    use bytes::Bytes;

    fn cycle(n: usize) -> BroadcastCycle {
        let mut b = CycleBuilder::new();
        b.push_segment(
            SegmentKind::GlobalIndex,
            PacketKind::Index,
            vec![Bytes::from(vec![0u8; 1])],
        );
        b.push_segment(
            SegmentKind::NetworkData,
            PacketKind::Data,
            (1..n).map(|i| Bytes::from(vec![i as u8; 1])).collect(),
        );
        b.finish()
    }

    #[test]
    fn receive_advances_and_counts() {
        let c = cycle(5);
        let mut ch = BroadcastChannel::lossless(&c);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 0);
        assert_eq!(ch.elapsed(), 1);
        assert_eq!(ch.tuned(), 1);
        assert_eq!(ch.slept(), 0);
    }

    #[test]
    fn sleep_costs_latency_not_tuning() {
        let c = cycle(10);
        let mut ch = BroadcastChannel::lossless(&c);
        ch.sleep(4);
        assert_eq!(ch.elapsed(), 4);
        assert_eq!(ch.tuned(), 0);
        assert_eq!(ch.slept(), 4);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 4);
    }

    #[test]
    fn wraps_to_next_cycle() {
        let c = cycle(4);
        let mut ch = BroadcastChannel::tune_in(&c, 3, LossModel::Lossless);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 3);
        let p = ch.receive().ok().unwrap();
        assert_eq!(p.payload()[0], 0, "continued into next cycle");
    }

    #[test]
    fn sleep_to_offset_is_minimal() {
        let c = cycle(10);
        let mut ch = BroadcastChannel::tune_in(&c, 7, LossModel::Lossless);
        ch.sleep_to_offset(2); // 7 -> 2 wraps: 5 packets
        assert_eq!(ch.elapsed(), 5);
        assert_eq!(ch.offset(), 2);
        ch.sleep_to_offset(2); // already there: no-op
        assert_eq!(ch.elapsed(), 5);
    }

    #[test]
    fn lossless_never_loses() {
        let c = cycle(8);
        let mut ch = BroadcastChannel::lossless(&c);
        for _ in 0..100 {
            assert!(matches!(ch.receive(), Received::Packet(_)));
        }
    }

    #[test]
    fn bernoulli_loses_at_roughly_the_configured_rate() {
        let c = cycle(8);
        let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bernoulli(0.3, 42));
        let mut lost = 0;
        let n = 20_000;
        for _ in 0..n {
            if matches!(ch.receive(), Received::Lost) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
        // Lost packets still cost tuning time.
        assert_eq!(ch.tuned(), n as u64);
    }

    #[test]
    fn loss_is_reproducible_per_seed() {
        let c = cycle(8);
        let run = |seed| {
            let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bernoulli(0.5, seed));
            (0..64)
                .map(|_| matches!(ch.receive(), Received::Lost))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_rejected() {
        LossModel::bernoulli(1.5, 0);
    }

    #[test]
    fn bursty_loss_hits_the_target_rate() {
        let c = cycle(64);
        for &(rate, burst) in &[(0.05f64, 8.0f64), (0.10, 4.0), (0.01, 16.0)] {
            let mut lost = 0usize;
            let total = 200_000usize;
            let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bursty(rate, burst, 7));
            for _ in 0..total {
                if matches!(ch.receive(), Received::Lost) {
                    lost += 1;
                }
            }
            let measured = lost as f64 / total as f64;
            assert!(
                (measured - rate).abs() < rate * 0.25 + 0.002,
                "rate {rate} burst {burst}: measured {measured:.4}"
            );
        }
    }

    #[test]
    fn bursty_losses_cluster() {
        // Mean run length of consecutive losses should approach the
        // configured burst length, far above the Bernoulli value.
        let c = cycle(64);
        let mean_run = |model: LossModel| {
            let mut ch = BroadcastChannel::tune_in(&c, 0, model);
            let mut runs = Vec::new();
            let mut cur = 0usize;
            for _ in 0..400_000 {
                if matches!(ch.receive(), Received::Lost) {
                    cur += 1;
                } else if cur > 0 {
                    runs.push(cur);
                    cur = 0;
                }
            }
            runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64
        };
        let bursty = mean_run(LossModel::bursty(0.05, 10.0, 3));
        let iid = mean_run(LossModel::bernoulli(0.05, 3));
        assert!(bursty > 5.0, "bursty mean run {bursty:.2}");
        assert!(iid < 2.0, "iid mean run {iid:.2}");
    }

    #[test]
    fn bursty_state_advances_through_sleep() {
        // Two clients with the same seed, one sleeping 1000 packets
        // between receives: the chain state must not freeze during
        // sleep, i.e. the sleeper's loss pattern differs from a
        // back-to-back receiver's at the same receive indexes.
        let c = cycle(16);
        let pattern = |sleep: u64| {
            let mut ch = BroadcastChannel::tune_in(&c, 0, LossModel::bursty(0.3, 6.0, 11));
            (0..64)
                .map(|_| {
                    let r = matches!(ch.receive(), Received::Lost);
                    ch.sleep(sleep);
                    r
                })
                .collect::<Vec<bool>>()
        };
        assert_ne!(pattern(0), pattern(1000));
    }
}
