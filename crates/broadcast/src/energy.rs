//! Client energy model (paper §3.1).
//!
//! "The (widely used) 802.11 WaveLAN card consumes 1.65 W, 1.4 W, and
//! 0.045 W in transmit, receive, and sleep states respectively \[8\]. ...
//! almost 98% of the market's mobile devices are integrated with an ARM
//! processor ... with a typical peak consumption of 200 mW."
//!
//! The model converts a query's packet counts and CPU time into joules,
//! substantiating the paper's claim that tuning time dominates power.

use crate::device::ChannelRate;
use crate::metrics::QueryStats;
use serde::{Deserialize, Serialize};

/// Power draw per client state, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Radio receive power.
    pub receive_watts: f64,
    /// Radio sleep power.
    pub sleep_watts: f64,
    /// CPU power while computing.
    pub cpu_watts: f64,
}

impl EnergyModel {
    /// WaveLAN receive/sleep + ARM CPU figures from the paper.
    pub const WAVELAN_ARM: EnergyModel = EnergyModel {
        receive_watts: 1.4,
        sleep_watts: 0.045,
        cpu_watts: 0.2,
    };

    /// Total joules a query consumed at the given channel rate.
    pub fn joules(&self, stats: &QueryStats, rate: ChannelRate) -> f64 {
        let rx = rate.secs_for(stats.tuning_packets) * self.receive_watts;
        let sleep = rate.secs_for(stats.sleep_packets) * self.sleep_watts;
        let cpu = stats.cpu.as_secs_f64() * self.cpu_watts;
        rx + sleep + cpu
    }

    /// Breakdown `(receive, sleep, cpu)` in joules.
    pub fn breakdown(&self, stats: &QueryStats, rate: ChannelRate) -> (f64, f64, f64) {
        (
            rate.secs_for(stats.tuning_packets) * self.receive_watts,
            rate.secs_for(stats.sleep_packets) * self.sleep_watts,
            stats.cpu.as_secs_f64() * self.cpu_watts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats(tuning: u64, sleep: u64, cpu_ms: u64) -> QueryStats {
        QueryStats {
            tuning_packets: tuning,
            latency_packets: tuning + sleep,
            sleep_packets: sleep,
            peak_memory_bytes: 0,
            cpu: Duration::from_millis(cpu_ms),
            settled_nodes: 0,
        }
    }

    #[test]
    fn receive_dominates_sleep_per_packet() {
        let m = EnergyModel::WAVELAN_ARM;
        let rx_only = m.joules(&stats(1000, 0, 0), ChannelRate::STATIC_3G);
        let sleep_only = m.joules(&stats(0, 1000, 0), ChannelRate::STATIC_3G);
        assert!(rx_only / sleep_only > 30.0, "1.4W vs 0.045W => ~31x");
    }

    #[test]
    fn tuning_outweighs_cpu_for_realistic_queries() {
        // ~5000 received packets vs 100 ms of ARM computation (§3.1's
        // rationale for using tuning time as the energy proxy).
        let m = EnergyModel::WAVELAN_ARM;
        let (rx, _, cpu) = m.breakdown(&stats(5000, 10_000, 100), ChannelRate::MOVING_3G);
        assert!(rx > 10.0 * cpu, "rx {rx} J vs cpu {cpu} J");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::WAVELAN_ARM;
        let s = stats(123, 456, 7);
        let (a, b, c) = m.breakdown(&s, ChannelRate::STATIC_3G);
        assert!((a + b + c - m.joules(&s, ChannelRate::STATIC_3G)).abs() < 1e-12);
    }
}
