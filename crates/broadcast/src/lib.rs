//! Wireless broadcast substrate (paper §2.2, §3.1).
//!
//! In the broadcast model a server repeatedly transmits identical
//! *broadcast cycles* — fixed-size packets carrying the database plus air
//! indexes — while clients tune in, receive the packets they need, sleep
//! through the rest, and process queries locally. This crate simulates that
//! world at packet granularity:
//!
//! * [`packet`] — 128-byte frames; every packet carries a pointer (offset)
//!   to the next index copy, as required by both EB and NR;
//! * [`codec`] — record-aligned payload encoding, so that one lost packet
//!   never corrupts records in other packets (the packing discipline of
//!   Figure 9);
//! * [`cycle`] — an assembled broadcast cycle with named segments;
//! * [`interleave`] — the (1,m) scheme of Imielinski et al. with the
//!   optimal `m = sqrt(data/index)`;
//! * [`channel`] — the client's view: tune in at an arbitrary instant,
//!   receive or sleep, optionally under Bernoulli packet loss;
//! * [`fault`] — seeded deterministic fault injection beyond loss:
//!   CRC-detectable bit corruption, truncated cycles with server
//!   restarts, duplicated and stale-version frames, correlated window
//!   loss — all advancing on the packet clock;
//! * [`metrics`] — tuning time, access latency, peak client memory, CPU
//!   time (the performance factors of §3.1);
//! * [`energy`] / [`device`] — WaveLAN/ARM power constants and the J2ME
//!   device profile used in the evaluation (§7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod codec;
pub mod cycle;
pub mod device;
pub mod energy;
pub mod fault;
pub mod interleave;
pub mod metrics;
pub mod packet;

pub use channel::{BroadcastChannel, LossModel, Received};
pub use codec::{PayloadReader, RecordWriter};
pub use cycle::{BroadcastCycle, CycleBuilder, SegmentKind};
pub use device::{ChannelRate, DeviceProfile};
pub use energy::EnergyModel;
pub use fault::{FaultPlan, FaultTelemetry};
pub use interleave::{interleave_1m, optimal_m};
pub use metrics::{CpuMeter, MemoryMeter, QueryStats};
pub use packet::{crc32, Packet, PacketKind, PACKET_SIZE, PAYLOAD_CAPACITY};
