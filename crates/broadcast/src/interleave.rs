//! The (1,m) interleaving scheme of Imielinski et al. (paper §2.2, Fig. 1).
//!
//! The data tuples are placed into `m` equi-sized segments, each preceded
//! by a full copy of the index. A larger `m` shortens the wait for the
//! next index but lengthens the cycle (more index copies); the classic
//! optimum is `m = sqrt(data_packets / index_packets)`.
//!
//! EB uses a variant (§4.1): index copies are forced to fall *between*
//! regions so region data is never cut by index packets; [`interleave_1m`]
//! therefore takes pre-split data chunks and distributes the copies at
//! chunk granularity, as close to equi-sized segments as the chunks allow.

use crate::cycle::{CycleBuilder, SegmentKind};
use crate::packet::PacketKind;
use bytes::Bytes;

/// Optimal number of index copies for the (1,m) scheme.
///
/// `m* = sqrt(data_packets / index_packets)`, clamped to at least 1.
pub fn optimal_m(data_packets: usize, index_packets: usize) -> usize {
    if index_packets == 0 || data_packets == 0 {
        return 1;
    }
    let m = (data_packets as f64 / index_packets as f64).sqrt().round() as usize;
    m.max(1)
}

/// A chunk of data packets that must stay contiguous (e.g. one region).
#[derive(Debug, Clone)]
pub struct DataChunk {
    /// Segment label for the chunk.
    pub kind: SegmentKind,
    /// Packet tag for the chunk's packets.
    pub packet_kind: PacketKind,
    /// Payloads of the chunk.
    pub payloads: Vec<Bytes>,
}

/// Assembles a (1,m)-interleaved cycle: `m` copies of `index` interleaved
/// with the data chunks, index copies only at chunk boundaries.
///
/// Copies are placed greedily so that each of the `m` data segments holds
/// roughly `total_data / m` packets. Returns the builder so callers can
/// append further segments before finishing.
pub fn interleave_1m(index: Vec<Bytes>, chunks: Vec<DataChunk>, m: usize) -> CycleBuilder {
    assert!(m >= 1, "need at least one index copy");
    let total_data: usize = chunks.iter().map(|c| c.payloads.len()).sum();
    let per_segment = total_data.div_ceil(m).max(1);

    let mut builder = CycleBuilder::new();
    let mut copies_placed = 0usize;
    let mut data_since_copy = usize::MAX; // force a copy before the first chunk

    for chunk in chunks {
        if data_since_copy >= per_segment && copies_placed < m {
            builder.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, index.clone());
            copies_placed += 1;
            data_since_copy = 0;
        }
        data_since_copy += chunk.payloads.len();
        builder.push_segment(chunk.kind, chunk.packet_kind, chunk.payloads);
    }
    // Guarantee every requested copy exists even for degenerate inputs.
    while copies_placed < m.min(1) {
        builder.push_segment(SegmentKind::GlobalIndex, PacketKind::Index, index.clone());
        copies_placed += 1;
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::Segment;

    fn chunk(region: u16, n: usize) -> DataChunk {
        DataChunk {
            kind: SegmentKind::RegionData(region),
            packet_kind: PacketKind::Data,
            payloads: (0..n).map(|_| Bytes::from(vec![region as u8; 3])).collect(),
        }
    }

    fn index(n: usize) -> Vec<Bytes> {
        (0..n).map(|_| Bytes::from(vec![0xFF; 3])).collect()
    }

    fn index_segments(segs: &[Segment]) -> Vec<&Segment> {
        segs.iter()
            .filter(|s| s.kind == SegmentKind::GlobalIndex)
            .collect()
    }

    #[test]
    fn optimal_m_formula() {
        assert_eq!(optimal_m(10_000, 100), 10);
        assert_eq!(optimal_m(100, 100), 1);
        assert_eq!(optimal_m(0, 5), 1);
        assert_eq!(optimal_m(5, 0), 1);
        // sqrt(2500/25)=10
        assert_eq!(optimal_m(2500, 25), 10);
    }

    #[test]
    fn m_copies_are_placed() {
        let chunks: Vec<_> = (0..8).map(|r| chunk(r, 5)).collect();
        let cycle = interleave_1m(index(2), chunks, 4).finish();
        assert_eq!(index_segments(cycle.segments()).len(), 4);
        // Total: 8*5 data + 4*2 index.
        assert_eq!(cycle.len(), 48);
    }

    #[test]
    fn copies_fall_between_chunks_only() {
        let chunks: Vec<_> = (0..6).map(|r| chunk(r, 4)).collect();
        let cycle = interleave_1m(index(3), chunks, 3).finish();
        // Every data segment must be contiguous: verify no GlobalIndex
        // segment starts strictly inside a data chunk's range.
        for s in cycle.segments() {
            if let SegmentKind::RegionData(_) = s.kind {
                for i in index_segments(cycle.segments()) {
                    assert!(i.start <= s.start || i.start >= s.start + s.len);
                }
            }
        }
    }

    #[test]
    fn data_order_preserved() {
        let chunks: Vec<_> = (0..5).map(|r| chunk(r, 2)).collect();
        let cycle = interleave_1m(index(1), chunks, 2).finish();
        let regions: Vec<u16> = cycle
            .segments()
            .iter()
            .filter_map(|s| match s.kind {
                SegmentKind::RegionData(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(regions, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn m_one_is_plain_index_then_data() {
        let cycle = interleave_1m(index(2), vec![chunk(0, 3), chunk(1, 3)], 1).finish();
        let segs = cycle.segments();
        assert_eq!(segs[0].kind, SegmentKind::GlobalIndex);
        assert_eq!(index_segments(segs).len(), 1);
    }

    #[test]
    fn segments_roughly_equal_sized() {
        let chunks: Vec<_> = (0..12).map(|r| chunk(r, 3)).collect();
        let cycle = interleave_1m(index(1), chunks, 4).finish();
        // Count data packets between consecutive index copies.
        let mut sizes = Vec::new();
        let mut current = 0usize;
        for s in cycle.segments() {
            match s.kind {
                SegmentKind::GlobalIndex => {
                    if current > 0 {
                        sizes.push(current);
                    }
                    current = 0;
                }
                _ => current += s.len,
            }
        }
        sizes.push(current);
        assert_eq!(sizes.iter().sum::<usize>(), 36);
        for &sz in &sizes {
            assert!((6..=12).contains(&sz), "segment size {sz} too uneven");
        }
    }
}
