//! Shared experiment harness: world construction, query workloads, method
//! drivers and table formatting for the per-table/per-figure runners in
//! `src/bin/experiments.rs`.
//!
//! Every experiment follows the paper's §7 protocol: a road network (one
//! of the five presets, scaled by `--scale` to keep single-core runtimes
//! sane; `--full` restores paper scale), fine-tuned partitionings (AF 16,
//! EB 32, NR 32 regions; LD 4 landmarks on the default network), and N
//! shortest-path queries between uniformly random node pairs, each posed
//! at a uniformly random tune-in instant.
//!
//! Methods come from `spair_methods::MethodRegistry`: [`Programs`] is a
//! thin wrapper over a registry [`ProgramSet`] (lazy per-method
//! programs), and the old five-variant `Method` enum is gone — a method
//! handle is a registry [`MethodId`], and [`PER_QUERY_METHODS`] names
//! the paper's per-query chart set.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, LossModel, QueryStats};
use spair_core::query::AirClient;
use spair_core::Query;
use spair_methods::eb::EbMethodProgram;
use spair_methods::ProgramSet;
use spair_roadnet::{dijkstra_full, Distance, NodeId, QueuePolicy, RoadNetwork};

pub use spair_core::EbProgram;
pub use spair_methods::{MethodId as Method, MethodRegistry, Tuning, World};

/// Default scale factor for experiment networks (the evaluation host is a
/// single core; `--full` restores 1.0).
pub const DEFAULT_SCALE: f64 = 0.2;

/// EB's fine-tuned region count (§7).
pub const EB_REGIONS: usize = 32;
/// NR's fine-tuned region count.
pub const NR_REGIONS: usize = 32;
/// ArcFlag's fine-tuned region count.
pub const AF_REGIONS: usize = 16;
/// Landmark's fine-tuned anchor count.
pub const LD_LANDMARKS: usize = 4;
/// Queries per experiment in the paper.
pub const PAPER_QUERIES: usize = 400;

/// The methods of the paper's per-query experiments, in chart order.
pub const PER_QUERY_METHODS: [Method; 5] =
    [Method::NR, Method::EB, Method::DJ, Method::LD, Method::AF];

/// `n` random distinct-source/target queries.
pub fn random_queries(g: &RoadNetwork, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0..g.num_nodes()) as NodeId;
            let mut t = rng.gen_range(0..g.num_nodes()) as NodeId;
            while t == s {
                t = rng.gen_range(0..g.num_nodes()) as NodeId;
            }
            Query::for_nodes(g, s, t)
        })
        .collect()
}

/// Approximate network diameter by a double sweep (for Figure 10's length
/// buckets).
pub fn approx_diameter(g: &RoadNetwork) -> Distance {
    let t0 = dijkstra_full(g, 0);
    let far = g
        .node_ids()
        .filter(|&v| t0.reachable(v))
        .max_by_key(|&v| t0.distance(v))
        .unwrap_or(0);
    let t1 = dijkstra_full(g, far);
    g.node_ids()
        .filter(|&v| t1.reachable(v))
        .map(|v| t1.distance(v))
        .max()
        .unwrap_or(0)
}

/// Registry-backed broadcast programs for one world (kept together so
/// experiments can iterate methods uniformly). Programs build lazily on
/// first use; [`Programs::build`]/[`Programs::build_tuned`] pre-build
/// the paper's five per-query methods.
pub struct Programs {
    set: ProgramSet,
}

impl Programs {
    /// Builds the per-query programs with the paper's fine-tuned
    /// parameters.
    pub fn build(world: &World) -> Self {
        Self::build_tuned(world, AF_REGIONS, LD_LANDMARKS)
    }

    /// Builds with explicit AF region / LD landmark counts (Figure 11).
    pub fn build_tuned(world: &World, af_regions: usize, landmarks: usize) -> Self {
        let set = ProgramSet::new(world.clone().with_tuning(Tuning {
            af_regions: Some(af_regions),
            ld_landmarks: landmarks,
            ..Tuning::default()
        }));
        for m in PER_QUERY_METHODS {
            set.ensure(m);
        }
        Self { set }
    }

    /// The underlying registry program set (any registered method can be
    /// built against this world through it).
    pub fn set(&self) -> &ProgramSet {
        &self.set
    }

    /// Cycle of a method (building its program on first use).
    pub fn cycle(&self, m: Method) -> &BroadcastCycle {
        self.set.ensure(m).cycle().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fresh client for a method.
    pub fn client(&self, m: Method) -> Box<dyn AirClient> {
        self.set
            .ensure(m)
            .make_client(QueuePolicy::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Server precompute seconds of a method's index build (Table 3).
    pub fn precompute_secs(&self, m: Method) -> f64 {
        self.set.ensure(m).precompute_secs()
    }

    /// The concrete EB program (replication / index-packet ablations).
    pub fn eb(&self) -> &EbProgram {
        self.set
            .ensure(Method::EB)
            .as_any()
            .downcast_ref::<EbMethodProgram>()
            .expect("EB slot holds the EB program")
            .program()
    }
}

/// Averaged measurements over a query set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Averages {
    /// Mean tuning time in packets.
    pub tuning: f64,
    /// Mean access latency in packets.
    pub latency: f64,
    /// Peak client memory in bytes over all queries.
    pub peak_memory: usize,
    /// Mean client CPU per query in milliseconds.
    pub cpu_ms: f64,
    /// Queries aggregated.
    pub count: usize,
}

impl Averages {
    /// Folds one query's stats in.
    pub fn push(&mut self, s: &QueryStats) {
        let n = self.count as f64;
        self.tuning = (self.tuning * n + s.tuning_packets as f64) / (n + 1.0);
        self.latency = (self.latency * n + s.latency_packets as f64) / (n + 1.0);
        self.peak_memory = self.peak_memory.max(s.peak_memory_bytes);
        self.cpu_ms = (self.cpu_ms * n + s.cpu.as_secs_f64() * 1000.0) / (n + 1.0);
        self.count += 1;
    }
}

/// Runs `queries` against one method's program, each from a random
/// tune-in offset, under `loss_rate` (0 = lossless). Returns per-query
/// `(distance, stats)` pairs.
pub fn run_method(
    programs: &Programs,
    method: Method,
    queries: &[Query],
    loss_rate: f64,
    seed: u64,
) -> Vec<(Distance, QueryStats)> {
    run_method_with_loss(programs, method, queries, seed, |i| {
        if loss_rate > 0.0 {
            LossModel::bernoulli(loss_rate, seed.wrapping_add(i as u64))
        } else {
            LossModel::Lossless
        }
    })
}

/// Like [`run_method`] with an arbitrary per-query loss model (used for
/// the bursty-loss extension of Figure 14).
pub fn run_method_with_loss(
    programs: &Programs,
    method: Method,
    queries: &[Query],
    seed: u64,
    mut loss_for: impl FnMut(usize) -> LossModel,
) -> Vec<(Distance, QueryStats)> {
    let cycle = programs.cycle(method);
    let mut client = programs.client(method);
    let mut rng = StdRng::seed_from_u64(seed);
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let offset = rng.gen_range(0..cycle.len());
            let mut ch = BroadcastChannel::tune_in(cycle, offset, loss_for(i));
            let out = client
                .query(&mut ch, q)
                .unwrap_or_else(|e| panic!("{} failed on query {i}: {e}", method.label()));
            (out.distance, out.stats)
        })
        .collect()
}

/// Formats a count with thousands separators.
pub fn fmt_thousands(v: usize) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_core::BorderPrecomputation;
    use spair_partition::KdTreePartition;
    use spair_roadnet::dijkstra_distance;

    fn tiny_world() -> World {
        let g = spair_roadnet::generators::small_grid(10, 10, 7);
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        World::from_parts(g, part, pre)
    }

    #[test]
    fn all_methods_agree_on_distances() {
        let world = tiny_world();
        let programs = Programs::build_tuned(&world, 4, 2);
        let queries = random_queries(&world.g, 6, 3);
        let reference: Vec<_> = queries
            .iter()
            .map(|q| dijkstra_distance(&world.g, q.source, q.target).unwrap())
            .collect();
        for m in PER_QUERY_METHODS {
            let results = run_method(&programs, m, &queries, 0.0, 1);
            for (i, (d, _)) in results.iter().enumerate() {
                assert_eq!(*d, reference[i], "{} query {i}", m.label());
            }
        }
    }

    #[test]
    fn all_methods_agree_under_loss() {
        let world = tiny_world();
        let programs = Programs::build_tuned(&world, 4, 2);
        let queries = random_queries(&world.g, 3, 9);
        let reference: Vec<_> = queries
            .iter()
            .map(|q| dijkstra_distance(&world.g, q.source, q.target).unwrap())
            .collect();
        for m in PER_QUERY_METHODS {
            let results = run_method(&programs, m, &queries, 0.05, 2);
            for (i, (d, _)) in results.iter().enumerate() {
                assert_eq!(*d, reference[i], "{} query {i}", m.label());
            }
        }
    }

    #[test]
    fn any_registered_method_runs_through_the_same_harness() {
        // The paper's chart set is a *subset*: every registered air
        // method — including ones added after this harness was written —
        // drives through the identical run_method path.
        let world = tiny_world();
        let programs = Programs::build_tuned(&world, 4, 2);
        let queries = random_queries(&world.g, 3, 5);
        let reference: Vec<_> = queries
            .iter()
            .map(|q| dijkstra_distance(&world.g, q.source, q.target).unwrap())
            .collect();
        for m in MethodRegistry::standard().air_methods() {
            let results = run_method(&programs, m, &queries, 0.0, 4);
            for (i, (d, _)) in results.iter().enumerate() {
                assert_eq!(*d, reference[i], "{} query {i}", m.label());
            }
        }
    }

    #[test]
    fn eb_downcast_exposes_the_concrete_program() {
        let world = tiny_world();
        let programs = Programs::build_tuned(&world, 4, 2);
        let eb = programs.eb();
        assert!(eb.replication() >= 1);
        assert!(eb.index_packets() > 0);
        assert_eq!(eb.cycle().len(), programs.cycle(Method::EB).len());
    }

    #[test]
    fn averages_fold_correctly() {
        let mut a = Averages::default();
        let mk = |t: u64, mem: usize| QueryStats {
            tuning_packets: t,
            latency_packets: 2 * t,
            sleep_packets: t,
            peak_memory_bytes: mem,
            cpu: std::time::Duration::from_millis(10),
            settled_nodes: 1,
        };
        a.push(&mk(100, 5));
        a.push(&mk(200, 9));
        assert_eq!(a.count, 2);
        assert!((a.tuning - 150.0).abs() < 1e-9);
        assert!((a.latency - 300.0).abs() < 1e-9);
        assert_eq!(a.peak_memory, 9);
    }

    #[test]
    fn diameter_is_positive_and_bounded() {
        let world = tiny_world();
        let d = approx_diameter(&world.g);
        assert!(d > 0);
        // The double sweep is at worst a 0.5-approximation.
        let q = random_queries(&world.g, 10, 5);
        for q in q {
            let dist = dijkstra_distance(&world.g, q.source, q.target).unwrap();
            assert!(dist <= 2 * d);
        }
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(0), "0");
        assert_eq!(fmt_thousands(999), "999");
        assert_eq!(fmt_thousands(14019), "14,019");
        assert_eq!(fmt_thousands(1234567), "1,234,567");
    }
}
