//! Shared experiment harness: world construction, query workloads, method
//! drivers and table formatting for the per-table/per-figure runners in
//! `src/bin/experiments.rs`.
//!
//! Every experiment follows the paper's §7 protocol: a road network (one
//! of the five presets, scaled by `--scale` to keep single-core runtimes
//! sane; `--full` restores paper scale), fine-tuned partitionings (AF 16,
//! EB 32, NR 32 regions; LD 4 landmarks on the default network), and N
//! shortest-path queries between uniformly random node pairs, each posed
//! at a uniformly random tune-in instant.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spair_baselines::arcflag::{ArcFlagClient, ArcFlagIndex, ArcFlagProgram, ArcFlagServer};
use spair_baselines::dj::{DjClient, DjProgram, DjServer};
use spair_baselines::landmark::{LandmarkClient, LandmarkIndex, LandmarkProgram, LandmarkServer};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, LossModel, QueryStats};
use spair_core::query::AirClient;
use spair_core::{
    BorderPrecomputation, EbClient, EbProgram, EbServer, NrClient, NrProgram, NrServer, Query,
};
use spair_partition::KdTreePartition;
use spair_roadnet::{dijkstra_full, Distance, NetworkPreset, NodeId, RoadNetwork};

/// Default scale factor for experiment networks (the evaluation host is a
/// single core; `--full` restores 1.0).
pub const DEFAULT_SCALE: f64 = 0.2;

/// EB's fine-tuned region count (§7).
pub const EB_REGIONS: usize = 32;
/// NR's fine-tuned region count.
pub const NR_REGIONS: usize = 32;
/// ArcFlag's fine-tuned region count.
pub const AF_REGIONS: usize = 16;
/// Landmark's fine-tuned anchor count.
pub const LD_LANDMARKS: usize = 4;
/// Queries per experiment in the paper.
pub const PAPER_QUERIES: usize = 400;

/// A generated network with its partitioning and precomputation products.
pub struct World {
    /// The road network.
    pub g: RoadNetwork,
    /// Kd partitioning for EB/NR.
    pub part: KdTreePartition,
    /// Border-pair precomputation shared by EB and NR.
    pub pre: BorderPrecomputation,
}

impl World {
    /// Builds the world for a preset at `scale`, partitioned into
    /// `regions` kd regions.
    pub fn build(preset: NetworkPreset, scale: f64, regions: usize, seed: u64) -> Self {
        let g = preset.scaled_config(seed, scale).generate();
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        Self { g, part, pre }
    }

    /// EB broadcast program.
    pub fn eb(&self) -> EbProgram {
        EbServer::new(&self.g, &self.part, &self.pre).build_program()
    }

    /// NR broadcast program.
    pub fn nr(&self) -> NrProgram {
        NrServer::new(&self.g, &self.part, &self.pre).build_program()
    }
}

/// `n` random distinct-source/target queries.
pub fn random_queries(g: &RoadNetwork, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0..g.num_nodes()) as NodeId;
            let mut t = rng.gen_range(0..g.num_nodes()) as NodeId;
            while t == s {
                t = rng.gen_range(0..g.num_nodes()) as NodeId;
            }
            Query::for_nodes(g, s, t)
        })
        .collect()
}

/// Approximate network diameter by a double sweep (for Figure 10's length
/// buckets).
pub fn approx_diameter(g: &RoadNetwork) -> Distance {
    let t0 = dijkstra_full(g, 0);
    let far = g
        .node_ids()
        .filter(|&v| t0.reachable(v))
        .max_by_key(|&v| t0.distance(v))
        .unwrap_or(0);
    let t1 = dijkstra_full(g, far);
    g.node_ids()
        .filter(|&v| t1.reachable(v))
        .map(|v| t1.distance(v))
        .max()
        .unwrap_or(0)
}

/// The methods that run per-query experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Next Region (the paper's best method).
    Nr,
    /// Elliptic Boundary.
    Eb,
    /// Dijkstra on air.
    Dj,
    /// Landmark / ALT.
    Ld,
    /// ArcFlag.
    Af,
}

impl Method {
    /// All per-query methods, in the paper's chart order.
    pub const ALL: [Method; 5] = [Method::Nr, Method::Eb, Method::Dj, Method::Ld, Method::Af];

    /// Chart label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Nr => "NR",
            Method::Eb => "EB",
            Method::Dj => "Dijkstra",
            Method::Ld => "Landmark",
            Method::Af => "ArcFlag",
        }
    }
}

/// All five broadcast programs for one network (kept together so
/// experiments can iterate methods uniformly).
pub struct Programs {
    /// NR program.
    pub nr: NrProgram,
    /// EB program.
    pub eb: EbProgram,
    /// DJ program.
    pub dj: DjProgram,
    /// Landmark program.
    pub ld: LandmarkProgram,
    /// Landmark precompute seconds.
    pub ld_secs: f64,
    /// ArcFlag program.
    pub af: ArcFlagProgram,
    /// ArcFlag precompute seconds.
    pub af_secs: f64,
    af_regions: usize,
}

impl Programs {
    /// Builds all five programs with the paper's fine-tuned parameters.
    pub fn build(world: &World) -> Self {
        Self::build_tuned(world, AF_REGIONS, LD_LANDMARKS)
    }

    /// Builds with explicit AF region / LD landmark counts (Figure 11).
    pub fn build_tuned(world: &World, af_regions: usize, landmarks: usize) -> Self {
        let ld_index = LandmarkIndex::build(&world.g, landmarks);
        let ld_secs = ld_index.precompute_secs;
        let ld = LandmarkServer::new(&world.g, &ld_index).build_program();
        let af_part = KdTreePartition::build(&world.g, af_regions);
        let af_index = ArcFlagIndex::build(&world.g, &af_part);
        let af_secs = af_index.precompute_secs;
        let af = ArcFlagServer::new(&world.g, &af_part, &af_index).build_program();
        Self {
            nr: world.nr(),
            eb: world.eb(),
            dj: DjServer::new(&world.g).build_program(),
            ld,
            ld_secs,
            af,
            af_secs,
            af_regions,
        }
    }

    /// Cycle of a method.
    pub fn cycle(&self, m: Method) -> &BroadcastCycle {
        match m {
            Method::Nr => self.nr.cycle(),
            Method::Eb => self.eb.cycle(),
            Method::Dj => self.dj.cycle(),
            Method::Ld => self.ld.cycle(),
            Method::Af => self.af.cycle(),
        }
    }

    /// Fresh client for a method.
    pub fn client(&self, m: Method) -> Box<dyn AirClient> {
        match m {
            Method::Nr => Box::new(NrClient::new(self.nr.summary())),
            Method::Eb => Box::new(EbClient::new(self.eb.summary())),
            Method::Dj => Box::new(DjClient::new()),
            Method::Ld => Box::new(LandmarkClient::new()),
            Method::Af => Box::new(ArcFlagClient::new(self.af_regions)),
        }
    }
}

/// Averaged measurements over a query set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Averages {
    /// Mean tuning time in packets.
    pub tuning: f64,
    /// Mean access latency in packets.
    pub latency: f64,
    /// Peak client memory in bytes over all queries.
    pub peak_memory: usize,
    /// Mean client CPU per query in milliseconds.
    pub cpu_ms: f64,
    /// Queries aggregated.
    pub count: usize,
}

impl Averages {
    /// Folds one query's stats in.
    pub fn push(&mut self, s: &QueryStats) {
        let n = self.count as f64;
        self.tuning = (self.tuning * n + s.tuning_packets as f64) / (n + 1.0);
        self.latency = (self.latency * n + s.latency_packets as f64) / (n + 1.0);
        self.peak_memory = self.peak_memory.max(s.peak_memory_bytes);
        self.cpu_ms = (self.cpu_ms * n + s.cpu.as_secs_f64() * 1000.0) / (n + 1.0);
        self.count += 1;
    }
}

/// Runs `queries` against one method's program, each from a random
/// tune-in offset, under `loss_rate` (0 = lossless). Returns per-query
/// `(distance, stats)` pairs.
pub fn run_method(
    programs: &Programs,
    method: Method,
    queries: &[Query],
    loss_rate: f64,
    seed: u64,
) -> Vec<(Distance, QueryStats)> {
    run_method_with_loss(programs, method, queries, seed, |i| {
        if loss_rate > 0.0 {
            LossModel::bernoulli(loss_rate, seed.wrapping_add(i as u64))
        } else {
            LossModel::Lossless
        }
    })
}

/// Like [`run_method`] with an arbitrary per-query loss model (used for
/// the bursty-loss extension of Figure 14).
pub fn run_method_with_loss(
    programs: &Programs,
    method: Method,
    queries: &[Query],
    seed: u64,
    mut loss_for: impl FnMut(usize) -> LossModel,
) -> Vec<(Distance, QueryStats)> {
    let cycle = programs.cycle(method);
    let mut client = programs.client(method);
    let mut rng = StdRng::seed_from_u64(seed);
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let offset = rng.gen_range(0..cycle.len());
            let mut ch = BroadcastChannel::tune_in(cycle, offset, loss_for(i));
            let out = client
                .query(&mut ch, q)
                .unwrap_or_else(|e| panic!("{} failed on query {i}: {e}", method.name()));
            (out.distance, out.stats)
        })
        .collect()
}

/// Formats a count with thousands separators.
pub fn fmt_thousands(v: usize) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spair_roadnet::dijkstra_distance;

    fn tiny_world() -> World {
        let g = spair_roadnet::generators::small_grid(10, 10, 7);
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        World { g, part, pre }
    }

    #[test]
    fn all_methods_agree_on_distances() {
        let world = tiny_world();
        let programs = Programs::build_tuned(&world, 4, 2);
        let queries = random_queries(&world.g, 6, 3);
        let reference: Vec<_> = queries
            .iter()
            .map(|q| dijkstra_distance(&world.g, q.source, q.target).unwrap())
            .collect();
        for m in Method::ALL {
            let results = run_method(&programs, m, &queries, 0.0, 1);
            for (i, (d, _)) in results.iter().enumerate() {
                assert_eq!(*d, reference[i], "{} query {i}", m.name());
            }
        }
    }

    #[test]
    fn all_methods_agree_under_loss() {
        let world = tiny_world();
        let programs = Programs::build_tuned(&world, 4, 2);
        let queries = random_queries(&world.g, 3, 9);
        let reference: Vec<_> = queries
            .iter()
            .map(|q| dijkstra_distance(&world.g, q.source, q.target).unwrap())
            .collect();
        for m in Method::ALL {
            let results = run_method(&programs, m, &queries, 0.05, 2);
            for (i, (d, _)) in results.iter().enumerate() {
                assert_eq!(*d, reference[i], "{} query {i}", m.name());
            }
        }
    }

    #[test]
    fn averages_fold_correctly() {
        let mut a = Averages::default();
        let mk = |t: u64, mem: usize| QueryStats {
            tuning_packets: t,
            latency_packets: 2 * t,
            sleep_packets: t,
            peak_memory_bytes: mem,
            cpu: std::time::Duration::from_millis(10),
            settled_nodes: 1,
        };
        a.push(&mk(100, 5));
        a.push(&mk(200, 9));
        assert_eq!(a.count, 2);
        assert!((a.tuning - 150.0).abs() < 1e-9);
        assert!((a.latency - 300.0).abs() < 1e-9);
        assert_eq!(a.peak_memory, 9);
    }

    #[test]
    fn diameter_is_positive_and_bounded() {
        let world = tiny_world();
        let d = approx_diameter(&world.g);
        assert!(d > 0);
        // The double sweep is at worst a 0.5-approximation.
        let q = random_queries(&world.g, 10, 5);
        for q in q {
            let dist = dijkstra_distance(&world.g, q.source, q.target).unwrap();
            assert!(dist <= 2 * d);
        }
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(0), "0");
        assert_eq!(fmt_thousands(999), "999");
        assert_eq!(fmt_thousands(14019), "14,019");
        assert_eq!(fmt_thousands(1234567), "1,234,567");
    }
}
