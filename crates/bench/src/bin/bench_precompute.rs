//! Serial-vs-parallel precomputation benchmark and `BENCH_precompute.json`
//! emitter — the BENCH trajectory point for the parallel pipeline.
//!
//! ```text
//! cargo run --release -p spair-bench --bin bench_precompute -- \
//!     [--side 71] [--regions 32] [--spq-side 45] [--hiti-side 45] \
//!     [--threads N] [--repeat 3] \
//!     [--out BENCH_precompute.json]
//! ```
//!
//! Builds a generated road network (`side × side` grid topology, ~5k
//! nodes by default), partitions it, then:
//!
//! 1. runs `BorderPrecomputation::run_serial` and the parallel
//!    `run_with_threads` (best of `--repeat` runs each),
//! 2. verifies the parallel tables are **bit-identical** to serial,
//! 3. repeats the exercise for the SPQ all-pairs build on a
//!    `--spq-side`-sized grid (`SpqIndex::build_serial` vs
//!    `build_with_threads`, gated on `same_trees`) — the per-node
//!    quadtree construction is the costliest precompute stage the
//!    framework has, so its speedup is tracked as its own trajectory
//!    point,
//! 4. repeats it once more for the HiTi hierarchy build on a
//!    `--hiti-side`-sized grid (`HiTiIndex::build_with_threads` at one
//!    worker vs many, gated on `same_tables`) — the flattened
//!    slot-arena build whose serial/parallel identity the hierarchy
//!    experiments rely on,
//! 5. writes the measurements as JSON.
//!
//! The JSON schema is documented in ROADMAP.md's Performance section.

use spair_baselines::spq::SpqIndex;
use spair_baselines::HiTiIndex;
use spair_core::BorderPrecomputation;
use spair_partition::KdTreePartition;
use spair_roadnet::generators::small_grid;
use spair_roadnet::{bench_out, parallel};
use std::time::Instant;

struct Opts {
    side: usize,
    regions: usize,
    spq_side: usize,
    hiti_side: usize,
    threads: usize,
    repeat: usize,
    out: String,
}

impl Opts {
    /// The configuration the committed artifact is generated with.
    fn default_sizes() -> Opts {
        Opts {
            side: 71,
            regions: 32,
            spq_side: 45,
            hiti_side: 45,
            threads: 0,
            repeat: 3,
            out: "BENCH_precompute.json".to_string(),
        }
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default_sizes();
    // Worker-count precedence (shared by every bench binary): an explicit
    // `--threads` flag wins over `SPAIR_THREADS`, which wins over the
    // detected parallelism.
    let mut threads_flag: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: missing value for {flag}");
                std::process::exit(2);
            })
        };
        let parse = |flag: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} expects a positive integer, got '{v}'");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--side" => opts.side = parse(flag, value()),
            "--regions" => opts.regions = parse(flag, value()),
            "--spq-side" => opts.spq_side = parse(flag, value()),
            "--hiti-side" => opts.hiti_side = parse(flag, value()),
            "--threads" => {
                let n = parse(flag, value());
                if n == 0 {
                    eprintln!("error: --threads must be >= 1");
                    std::process::exit(2);
                }
                threads_flag = Some(n);
            }
            "--repeat" => opts.repeat = parse(flag, value()),
            "--out" => opts.out = value(),
            other => {
                eprintln!(
                    "error: unknown flag {other}\nusage: bench_precompute \
                     [--side N] [--regions N] [--spq-side N] [--hiti-side N] \
                     [--threads N] [--repeat N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.repeat == 0
        || opts.side == 0
        || opts.regions == 0
        || opts.spq_side == 0
        || opts.hiti_side == 0
    {
        eprintln!("error: --side, --regions, --spq-side, --hiti-side and --repeat must be >= 1");
        std::process::exit(2);
    }
    opts.threads = parallel::resolve_threads(threads_flag);
    opts.out = bench_out::redirect_partial_out(&opts.out, partial_reason(&opts));
    opts
}

/// The committed `BENCH_precompute.json` is generated with the default
/// problem sizes; a run shrunk (or grown) via `--side`/`--regions`/
/// `--spq-side`/`--hiti-side`/`--repeat` is a partial run redirected to
/// `*.smoke.json`.
fn partial_reason(opts: &Opts) -> Option<&'static str> {
    let d = Opts::default_sizes();
    if (
        opts.side,
        opts.regions,
        opts.spq_side,
        opts.hiti_side,
        opts.repeat,
    ) != (d.side, d.regions, d.spq_side, d.hiti_side, d.repeat)
    {
        Some("non-default problem size")
    } else {
        None
    }
}

fn best_of<T>(repeat: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("repeat >= 1"))
}

fn main() {
    let opts = parse_opts();
    let g = small_grid(opts.side, opts.side, 42);
    let part = KdTreePartition::build(&g, opts.regions);

    eprintln!(
        "graph: {} nodes, {} edges; partition: {} regions; threads: {}",
        g.num_nodes(),
        g.num_edges(),
        opts.regions,
        opts.threads
    );

    let (serial_secs, serial) =
        best_of(opts.repeat, || BorderPrecomputation::run_serial(&g, &part));
    eprintln!("serial:   {serial_secs:.3}s (best of {})", opts.repeat);
    let (parallel_secs, par) = best_of(opts.repeat, || {
        BorderPrecomputation::run_with_threads(&g, &part, opts.threads)
    });
    eprintln!("parallel: {parallel_secs:.3}s (best of {})", opts.repeat);

    let identical = serial.same_tables(&par);
    assert!(identical, "parallel output diverged from serial");
    let speedup = serial_secs / parallel_secs;
    eprintln!("speedup:  {speedup:.2}x (bit-identical: {identical})");

    // SPQ all-pairs build: one full Dijkstra + one quadtree per node. Its
    // own (smaller) network keeps the quadratic stage within a bench
    // budget while still dominating the border measurements above.
    let sg = small_grid(opts.spq_side, opts.spq_side, 42);
    eprintln!(
        "spq graph: {} nodes, {} edges",
        sg.num_nodes(),
        sg.num_edges()
    );
    let (spq_serial_secs, spq_serial) = best_of(opts.repeat, || SpqIndex::build_serial(&sg));
    eprintln!(
        "spq serial:   {spq_serial_secs:.3}s (best of {})",
        opts.repeat
    );
    let (spq_parallel_secs, spq_par) = best_of(opts.repeat, || {
        SpqIndex::build_with_threads(&sg, opts.threads)
    });
    eprintln!(
        "spq parallel: {spq_parallel_secs:.3}s (best of {})",
        opts.repeat
    );
    let spq_identical = spq_serial.same_trees(&spq_par);
    assert!(spq_identical, "parallel SPQ build diverged from serial");
    let spq_speedup = spq_serial_secs / spq_parallel_secs;
    eprintln!("spq speedup:  {spq_speedup:.2}x (bit-identical: {spq_identical})");

    // HiTi hierarchy build: restricted border-pair Dijkstras over every
    // group of every level, on the flat slot-arena path. One worker vs
    // many, pinned bit-identical via the `same_tables` certificate.
    const HITI_GRID_SIDE: usize = 8;
    const HITI_LEVELS: usize = 4;
    let hg = small_grid(opts.hiti_side, opts.hiti_side, 42);
    eprintln!(
        "hiti graph: {} nodes, {} edges",
        hg.num_nodes(),
        hg.num_edges()
    );
    let (hiti_serial_secs, hiti_serial) = best_of(opts.repeat, || {
        HiTiIndex::build_with_threads(&hg, HITI_GRID_SIDE, HITI_LEVELS, 1)
    });
    eprintln!(
        "hiti serial:   {hiti_serial_secs:.3}s (best of {})",
        opts.repeat
    );
    let (hiti_parallel_secs, hiti_par) = best_of(opts.repeat, || {
        HiTiIndex::build_with_threads(&hg, HITI_GRID_SIDE, HITI_LEVELS, opts.threads)
    });
    eprintln!(
        "hiti parallel: {hiti_parallel_secs:.3}s (best of {})",
        opts.repeat
    );
    let hiti_identical = hiti_serial.same_tables(&hiti_par);
    assert!(hiti_identical, "parallel HiTi build diverged from serial");
    let hiti_speedup = hiti_serial_secs / hiti_parallel_secs;
    eprintln!("hiti speedup:  {hiti_speedup:.2}x (bit-identical: {hiti_identical})");

    let json = format!(
        "{{\n  \
         \"benchmark\": \"border_precompute_serial_vs_parallel\",\n  \
         \"graph\": {{ \"nodes\": {}, \"edges\": {}, \"border_nodes\": {}, \"regions\": {} }},\n  \
         \"host\": {{ \"available_parallelism\": {}, \"worker_threads\": {} }},\n  \
         \"repeat\": {},\n  \
         \"serial_secs\": {:.6},\n  \
         \"parallel_secs\": {:.6},\n  \
         \"speedup\": {:.4},\n  \
         \"bit_identical\": {},\n  \
         \"spq\": {{ \"nodes\": {}, \"edges\": {}, \"total_blocks\": {}, \
         \"index_packets\": {}, \"serial_secs\": {:.6}, \"parallel_secs\": {:.6}, \
         \"speedup\": {:.4}, \"bit_identical\": {} }},\n  \
         \"hiti\": {{ \"nodes\": {}, \"edges\": {}, \"grid_side\": {}, \"levels\": {}, \
         \"index_bytes\": {}, \"index_packets\": {}, \"serial_secs\": {:.6}, \
         \"parallel_secs\": {:.6}, \"speedup\": {:.4}, \"bit_identical\": {} }}\n\
         }}\n",
        g.num_nodes(),
        g.num_edges(),
        serial.borders().count(),
        opts.regions,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        opts.threads,
        opts.repeat,
        serial_secs,
        parallel_secs,
        speedup,
        identical,
        sg.num_nodes(),
        sg.num_edges(),
        spq_serial.total_blocks(),
        spq_serial.index_packets(),
        spq_serial_secs,
        spq_parallel_secs,
        spq_speedup,
        spq_identical,
        hg.num_nodes(),
        hg.num_edges(),
        HITI_GRID_SIDE,
        HITI_LEVELS,
        hiti_serial.index_bytes(),
        hiti_serial.index_packets(),
        hiti_serial_secs,
        hiti_parallel_secs,
        hiti_speedup,
        hiti_identical
    );
    std::fs::write(&opts.out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_default_run_may_write_the_committed_artifact() {
        assert_eq!(partial_reason(&Opts::default_sizes()), None);
    }

    #[test]
    fn resized_runs_never_shadow_the_committed_artifact() {
        let mut o = Opts::default_sizes();
        o.side = 41;
        assert_eq!(partial_reason(&o), Some("non-default problem size"));
        assert_eq!(
            bench_out::redirect_partial_out(&o.out, partial_reason(&o)),
            "BENCH_precompute.smoke.json"
        );
    }
}
