//! Experiment runner: one subcommand per table/figure of the paper.
//!
//! ```text
//! cargo run --release -p spair-bench --bin experiments -- <cmd> [flags]
//!
//! cmd:   table1 | table2 | table3 | fig10 | fig11 | fig12 | fig13 | fig14
//!        | ablations | all
//! flags: --full          paper-scale networks (default: 20% scale)
//!        --scale <f>     explicit scale factor in (0, 1]
//!        --queries <n>   queries per experiment (default: paper's 400,
//!                        reduced for the multi-network experiments)
//!        --seed <s>      workload seed (default 42)
//!        --methods <a,b> per-query chart set by registry name (default:
//!                        the paper's nr,eb,dj,ld,af) — any registered
//!                        air method joins the charts with no code edits
//!        --list-methods  print the registry's air methods and exit
//! ```
//!
//! Numbers are expected to reproduce the paper's *shape* (who wins, by
//! roughly what factor, where crossovers fall), not its absolute values:
//! the networks are synthetic with the paper's sizes, and the host is not
//! a 2010 J2ME handset. See EXPERIMENTS.md for the recorded comparison.

use spair_bench::*;
use spair_broadcast::{ChannelRate, DeviceProfile, EnergyModel};
use spair_core::memory_bound::MemoryBoundProcessor;
use spair_core::netcodec::{decode_payload, encode_nodes_with_borders, ReceivedGraph};
use spair_core::Query;
use spair_partition::{Partitioning, RegionId};
use spair_roadnet::{NetworkPreset, NodeId};

struct Opts {
    cmd: String,
    scale: f64,
    queries: usize,
    seed: u64,
    /// The per-query chart set (Figures 10–12, 14). Defaults to the
    /// paper's five; `--methods` swaps in any registered air methods —
    /// e.g. `--methods nr,eb,dj,astar_air,bidi_air` — with no code
    /// edits.
    methods: Vec<Method>,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = String::from("all");
    let mut scale = DEFAULT_SCALE;
    let mut queries = 0usize; // 0 = per-experiment default
    let mut seed = 42u64;
    let mut methods: Vec<Method> = PER_QUERY_METHODS.to_vec();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => scale = 1.0,
            "--scale" => scale = it.next().expect("--scale <f>").parse().expect("scale"),
            "--queries" => queries = it.next().expect("--queries <n>").parse().expect("n"),
            "--seed" => seed = it.next().expect("--seed <s>").parse().expect("seed"),
            "--methods" => {
                let registry = MethodRegistry::standard();
                methods = it
                    .next()
                    .expect("--methods <a,b,c>")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        registry
                            .get(name.trim())
                            .unwrap_or_else(|e| panic!("--methods: {e}"))
                    })
                    .collect();
                assert!(!methods.is_empty(), "--methods expects at least one name");
            }
            "--list-methods" => {
                println!("registered air methods (usable with --methods):");
                for m in MethodRegistry::standard().air_methods() {
                    println!("  {:<14} chart label: {}", m.name(), m.label());
                }
                std::process::exit(0);
            }
            c if !c.starts_with('-') => cmd = c.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    Opts {
        cmd,
        scale,
        queries,
        seed,
        methods,
    }
}

fn main() {
    let opts = parse_opts();
    eprintln!(
        "# spair experiments — scale {:.2}{}, seed {}",
        opts.scale,
        if opts.scale >= 1.0 {
            " (paper scale)"
        } else {
            ""
        },
        opts.seed
    );
    match opts.cmd.as_str() {
        "table1" => table1(&opts),
        "table2" => table2(&opts),
        "table3" => table3(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "fig13" => fig13(&opts),
        "fig14" => fig14(&opts),
        "ablations" => ablations(&opts),
        "all" => {
            table1(&opts);
            table2(&opts);
            table3(&opts);
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
            fig13(&opts);
            fig14(&opts);
            ablations(&opts);
        }
        other => panic!("unknown experiment '{other}'"),
    }
}

fn default_world(opts: &Opts) -> World {
    World::build(NetworkPreset::Germany, opts.scale, EB_REGIONS, opts.seed)
}

fn queries_or(opts: &Opts, default: usize) -> usize {
    if opts.queries > 0 {
        opts.queries
    } else {
        default
    }
}

/// Table 1: broadcast cycle length per method on the default network.
fn table1(opts: &Opts) {
    println!(
        "\n== Table 1: Broadcast cycle length (Germany @ {:.2}) ==",
        opts.scale
    );
    let world = default_world(opts);
    let programs = Programs::build(&world);
    let registry = MethodRegistry::standard();
    eprintln!("  building HiTi hierarchy...");
    let hiti = registry.get("hiti_air").expect("registered");
    let hiti_len = programs.cycle(hiti).len();
    eprintln!("  building SPQ quadtrees (one Dijkstra per node)...");
    let spq = registry.get("spq_air").expect("registered");
    let spq_len = programs.cycle(spq).len();
    let dj_len = programs.cycle(Method::DJ).len();

    let rows: Vec<(&str, usize)> = vec![
        ("Dijkstra (DJ)", dj_len),
        ("NR", programs.cycle(Method::NR).len()),
        ("EB", programs.cycle(Method::EB).len()),
        ("Landmark (LD)", programs.cycle(Method::LD).len()),
        ("ArcFlag (AF)", programs.cycle(Method::AF).len()),
        ("SPQ", spq_len),
        ("HiTi", hiti_len),
    ];
    println!(
        "{:<16} {:>10} {:>14} {:>16}",
        "Method", "Packets", "Sec (2Mbps)", "Sec (384Kbps)"
    );
    for (name, packets) in rows {
        println!(
            "{:<16} {:>10} {:>14.3} {:>16.3}",
            name,
            fmt_thousands(packets),
            ChannelRate::STATIC_3G.secs_for(packets as u64),
            ChannelRate::MOVING_3G.secs_for(packets as u64),
        );
    }
}

/// Table 2: method applicability per network against the (scaled) heap.
fn table2(opts: &Opts) {
    println!("\n== Table 2: Method applicability per network ==");
    let heap = (DeviceProfile::J2ME_PHONE.heap_bytes as f64 * opts.scale) as usize;
    println!(
        "(device heap budget scaled with the network: {:.2} MB)",
        heap as f64 / (1024.0 * 1024.0)
    );
    println!(
        "{:<14} {:>8} {:>8}   {:>3} {:>3} {:>3} {:>3} {:>3}",
        "Network", "Nodes", "Edges", "AF", "LD", "DJ", "EB", "NR"
    );
    let n_queries = queries_or(opts, 20);
    for preset in NetworkPreset::ALL {
        let world = World::build(preset, opts.scale, EB_REGIONS, opts.seed);
        let programs = Programs::build(&world);
        let queries = random_queries(&world.g, n_queries, opts.seed + 1);
        let mut marks = Vec::new();
        for m in [Method::AF, Method::LD, Method::DJ, Method::EB, Method::NR] {
            let results = run_method(&programs, m, &queries, 0.0, opts.seed + 2);
            let peak = results
                .iter()
                .map(|(_, s)| s.peak_memory_bytes)
                .max()
                .unwrap_or(0);
            marks.push(if peak <= heap { "ok" } else { "--" });
        }
        println!(
            "{:<14} {:>8} {:>8}   {:>3} {:>3} {:>3} {:>3} {:>3}",
            preset.name(),
            fmt_thousands(world.g.num_nodes()),
            fmt_thousands(world.g.num_edges() / 2),
            marks[0],
            marks[1],
            marks[2],
            marks[3],
            marks[4],
        );
    }

    // Extension: the paper excludes HiTi and SPQ a priori ("their space
    // requirements exceed our device's heap size even for the smallest of
    // our networks"); with full on-air clients we can *measure* that on
    // the smallest network instead of asserting it.
    println!("\n-- extension: measured HiTi/SPQ peak memory on Milan --");
    let world = World::build(NetworkPreset::Milan, opts.scale, EB_REGIONS, opts.seed);
    let programs = Programs::build(&world);
    let queries = random_queries(&world.g, 5, opts.seed + 3);
    let registry = MethodRegistry::standard();
    let mut rows = Vec::new();
    for (name, method) in [("HiTi", "hiti_air"), ("SPQ", "spq_air")] {
        let m = registry.get(method).expect("registered");
        let cycle = programs.cycle(m);
        let mut client = programs.client(m);
        rows.push((name, run_air_client(client.as_mut(), cycle, &queries)));
    }
    for (name, peak) in rows {
        println!(
            "{:<6} peak {:>8.3} MB vs heap {:>8.3} MB  -> {}",
            name,
            peak as f64 / (1024.0 * 1024.0),
            heap as f64 / (1024.0 * 1024.0),
            if peak <= heap { "ok" } else { "exceeds heap" },
        );
    }
}

/// Peak memory of an air client over a query set (lossless).
fn run_air_client(
    client: &mut dyn spair_core::query::AirClient,
    cycle: &spair_broadcast::BroadcastCycle,
    queries: &[Query],
) -> usize {
    use spair_broadcast::{BroadcastChannel, LossModel};
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let mut ch =
                BroadcastChannel::tune_in(cycle, (i * 131) % cycle.len(), LossModel::Lossless);
            client
                .query(&mut ch, q)
                .map(|o| o.stats.peak_memory_bytes)
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Table 3: server precomputation time per network.
fn table3(opts: &Opts) {
    println!("\n== Table 3: Pre-computation time (sec) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "Network", "EB/NR", "ArcFlag", "Landmark"
    );
    for preset in NetworkPreset::ALL {
        let world = World::build(preset, opts.scale, EB_REGIONS, opts.seed);
        let programs = Programs::build(&world);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3}",
            preset.name(),
            world.pre.precompute_secs,
            programs.precompute_secs(Method::AF),
            programs.precompute_secs(Method::LD),
        );
    }
}

/// Figure 10: tuning / memory / latency / CPU vs shortest-path length.
fn fig10(opts: &Opts) {
    println!(
        "\n== Figure 10: Effect of shortest path length (Germany @ {:.2}) ==",
        opts.scale
    );
    let world = default_world(opts);
    let programs = Programs::build(&world);
    let n_queries = queries_or(opts, PAPER_QUERIES);
    let queries = random_queries(&world.g, n_queries, opts.seed + 10);
    let diameter = approx_diameter(&world.g);
    println!(
        "(diameter ~{}, {} queries, 4 length buckets)",
        fmt_thousands(diameter as usize),
        n_queries
    );

    // Per method: run all queries, bucket by resulting distance.
    let bucket_of = |d: u64| -> usize { ((4 * d) / (diameter + 1)).min(3) as usize };
    let mut per_method: Vec<[Averages; 4]> = Vec::new();
    let mut energy: Vec<f64> = Vec::new();
    for &m in &opts.methods {
        let results = run_method(&programs, m, &queries, 0.0, opts.seed + 11);
        let mut buckets = [Averages::default(); 4];
        let mut joules = 0.0;
        for (d, s) in &results {
            buckets[bucket_of(*d)].push(s);
            joules += EnergyModel::WAVELAN_ARM.joules(s, ChannelRate::MOVING_3G);
        }
        per_method.push(buckets);
        energy.push(joules / results.len() as f64);
    }

    for (title, f) in [
        (
            "a) Tuning time (packets)",
            &(|a: &Averages| format!("{:>10.0}", a.tuning)) as &dyn Fn(&Averages) -> String,
        ),
        ("b) Peak memory (MB)", &|a: &Averages| {
            format!("{:>10.3}", a.peak_memory as f64 / (1024.0 * 1024.0))
        }),
        ("c) Access latency (packets)", &|a: &Averages| {
            format!("{:>10.0}", a.latency)
        }),
        ("d) CPU time (ms)", &|a: &Averages| {
            format!("{:>10.3}", a.cpu_ms)
        }),
    ] {
        println!("\n-- {title} --");
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            "Method", "Q1", "Q2", "Q3", "Q4"
        );
        for (mi, m) in opts.methods.iter().enumerate() {
            let row: Vec<String> = per_method[mi].iter().map(f).collect();
            println!("{:<10} {}", m.label(), row.join(" "));
        }
    }
    println!("\n-- extension: mean energy per query (J, 384Kbps, WaveLAN/ARM) --");
    for (mi, m) in opts.methods.iter().enumerate() {
        println!("{:<10} {:>10.3}", m.label(), energy[mi]);
    }
}

/// Figure 11: fine-tuning regions (AF/EB/NR) and landmarks (LD).
fn fig11(opts: &Opts) {
    println!("\n== Figure 11: Fine-tuning (regions/landmarks) ==");
    let n_queries = queries_or(opts, 100);
    let configs = [(16usize, 2usize), (32, 4), (64, 8), (128, 16)];
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>10}",
        "Config (meth@param)", "Tuning", "Memory(MB)", "Latency", "CPU(ms)"
    );
    for (regions, landmarks) in configs {
        let world = World::build(NetworkPreset::Germany, opts.scale, regions, opts.seed);
        // ArcFlag is only feasible at 16 regions in the paper; we build it
        // everywhere but it simply shows its (growing) cost.
        let programs = Programs::build_tuned(&world, regions.min(64), landmarks);
        let queries = random_queries(&world.g, n_queries, opts.seed + 20);
        for &m in &opts.methods {
            if m == Method::AF && regions > 16 {
                continue; // paper: heap-infeasible beyond 16
            }
            let results = run_method(&programs, m, &queries, 0.0, opts.seed + 21);
            let mut avg = Averages::default();
            for (_, s) in &results {
                avg.push(s);
            }
            // Only the region-partitioned methods vary with the region
            // count; LD varies with landmarks; everything else (DJ and
            // any registry extra) shows its flat baseline.
            let label = if m == Method::LD {
                format!("{}@{}", m.label(), landmarks)
            } else if m == Method::NR || m == Method::EB || m == Method::AF {
                format!("{}@{}", m.label(), regions)
            } else {
                m.label().to_string()
            };
            println!(
                "{:<22} {:>10.0} {:>12.3} {:>10.0} {:>10.3}",
                label,
                avg.tuning,
                avg.peak_memory as f64 / (1024.0 * 1024.0),
                avg.latency,
                avg.cpu_ms,
            );
        }
    }
}

/// Figure 12: performance across the five networks.
fn fig12(opts: &Opts) {
    println!("\n== Figure 12: Different networks ==");
    let heap = (DeviceProfile::J2ME_PHONE.heap_bytes as f64 * opts.scale) as usize;
    let n_queries = queries_or(opts, 100);
    println!(
        "{:<14} {:<10} {:>10} {:>12} {:>10} {:>10}",
        "Network", "Method", "Tuning", "Memory(MB)", "Latency", "CPU(ms)"
    );
    for preset in NetworkPreset::ALL {
        let world = World::build(preset, opts.scale, EB_REGIONS, opts.seed);
        let programs = Programs::build(&world);
        let queries = random_queries(&world.g, n_queries, opts.seed + 30);
        for &m in &opts.methods {
            let results = run_method(&programs, m, &queries, 0.0, opts.seed + 31);
            let mut avg = Averages::default();
            for (_, s) in &results {
                avg.push(s);
            }
            let oom = if avg.peak_memory > heap {
                "  [exceeds heap]"
            } else {
                ""
            };
            println!(
                "{:<14} {:<10} {:>10.0} {:>12.3} {:>10.0} {:>10.3}{}",
                preset.name(),
                m.label(),
                avg.tuning,
                avg.peak_memory as f64 / (1024.0 * 1024.0),
                avg.latency,
                avg.cpu_ms,
                oom,
            );
        }
    }
}

/// Figure 13: client-side super-edge precomputation (§6.1) — memory & CPU
/// with and without, for EB and NR.
fn fig13(opts: &Opts) {
    println!(
        "\n== Figure 13: Memory-bound processing (Germany @ {:.2}) ==",
        opts.scale
    );
    let world = default_world(opts);
    let n_queries = queries_or(opts, 50);
    let queries = random_queries(&world.g, n_queries, opts.seed + 40);

    // Region data as the client would decode it (with border flags).
    let mut store = ReceivedGraph::new();
    for r in 0..world.part.num_regions() {
        let nodes = &world.part.nodes_by_region()[r];
        for payload in
            encode_nodes_with_borders(&world.g, nodes, |v| world.pre.borders().is_border(v))
        {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(rec);
            }
        }
    }

    let needed_for = |q: &Query, eb: bool| -> Vec<RegionId> {
        let rs = world.part.region_of(q.source);
        let rt = world.part.region_of(q.target);
        if eb {
            // EB's pruning rule.
            let ub = world.pre.minmax(rs, rt).max;
            (0..world.part.num_regions() as RegionId)
                .filter(|&r| {
                    r == rs || r == rt || {
                        let a = world.pre.minmax(rs, r);
                        let b = world.pre.minmax(r, rt);
                        !a.is_empty() && !b.is_empty() && a.min + b.min <= ub
                    }
                })
                .collect()
        } else {
            world.pre.needed_regions(rs, rt).iter().collect()
        }
    };

    for (label, eb) in [("NR", false), ("EB", true)] {
        let mut with_mem = 0f64;
        let mut without_mem = 0f64;
        let mut with_cpu = 0f64;
        let mut without_cpu = 0f64;
        for q in &queries {
            let regions = needed_for(q, eb);
            // Without §6.1: hold every needed region + search state.
            let raw: usize = regions
                .iter()
                .flat_map(|&r| world.part.nodes_by_region()[r as usize].iter())
                .map(|&v| 16 + 8 * store.out_edges(v).len())
                .sum();
            let t0 = std::time::Instant::now();
            let (plain, _) = store.shortest_path(q.source, q.target);
            without_cpu += t0.elapsed().as_secs_f64() * 1000.0;
            without_mem = without_mem.max(raw as f64);

            // With §6.1: contract region by region.
            let mut proc = MemoryBoundProcessor::new();
            for &r in &regions {
                let nodes = &world.part.nodes_by_region()[r as usize];
                let terminals: Vec<NodeId> = [q.source, q.target]
                    .iter()
                    .copied()
                    .filter(|v| nodes.contains(v))
                    .collect();
                proc.add_region(&store, nodes, &terminals);
            }
            let contracted = proc.shortest_path(q.source, q.target);
            assert_eq!(
                contracted.as_ref().map(|(d, _)| *d),
                plain.as_ref().map(|(d, _)| *d),
                "distance must be unchanged"
            );
            with_mem = with_mem.max(proc.mem.peak() as f64);
            with_cpu += proc.cpu.total().as_secs_f64() * 1000.0;
        }
        let n = queries.len() as f64;
        println!(
            "{label} (w/ precomp):  memory {:>8.3} MB   cpu {:>8.3} ms",
            with_mem / (1024.0 * 1024.0),
            with_cpu / n
        );
        println!(
            "{label} (w/o precomp): memory {:>8.3} MB   cpu {:>8.3} ms",
            without_mem / (1024.0 * 1024.0),
            without_cpu / n
        );
    }
}

/// Ablations of the design choices DESIGN.md calls out:
/// (a) EB's cross-border/local region-data split (§4.1; the paper credits
///     it ~20% of tuning time);
/// (b) the (1,m) replication degree for EB's global index (latency vs
///     cycle-length trade-off around the optimal m);
/// (c) NR's pruning tightness versus EB's elliptic candidate set (the
///     mechanism behind Figure 10a).
fn ablations(opts: &Opts) {
    println!("\n== Ablations (Germany @ {:.2}) ==", opts.scale);
    let world = default_world(opts);
    let n_queries = queries_or(opts, 100);
    let queries = random_queries(&world.g, n_queries, opts.seed + 60);

    // (a) cross-border split: actual EB tuning vs tuning had the client
    // received the local segments of non-terminal regions too.
    let programs = Programs::build(&world);
    let results = run_method(&programs, Method::EB, &queries, 0.0, opts.seed + 61);
    let mut with_split = 0f64;
    let mut without_split = 0f64;
    for (q, (_, s)) in queries.iter().zip(&results) {
        with_split += s.tuning_packets as f64;
        let rs = world.part.region_of(q.source);
        let rt = world.part.region_of(q.target);
        let ub = world.pre.minmax(rs, rt).max;
        let mut extra = 0usize;
        for r in 0..world.part.num_regions() as RegionId {
            if r == rs || r == rt {
                continue;
            }
            let a = world.pre.minmax(rs, r);
            let b = world.pre.minmax(r, rt);
            if !a.is_empty() && !b.is_empty() && a.min + b.min <= ub {
                // Local-segment packets this region would add.
                let locals: Vec<_> = world.part.nodes_by_region()[r as usize]
                    .iter()
                    .copied()
                    .filter(|&v| !world.pre.is_cross_border(v))
                    .collect();
                extra += spair_core::netcodec::packet_count(&world.g, &locals);
            }
        }
        without_split += (s.tuning_packets as usize + extra) as f64;
    }
    let n = queries.len() as f64;
    println!(
        "a) EB cross-border split: tuning {:.0} with vs {:.0} without ({:.1}% saved; paper ~20%)",
        with_split / n,
        without_split / n,
        100.0 * (1.0 - with_split / without_split)
    );

    // (b) (1,m) replication sweep for EB-style cycles.
    println!("b) (1,m) sweep: cycle length grows with m, wait-for-index shrinks");
    let eb_index = programs.eb().index_packets();
    let data = programs.cycle(Method::EB).len() - programs.eb().replication() * eb_index;
    for m in [1usize, 2, 4, 8, 16, 32] {
        let cycle = data + m * eb_index;
        let mean_wait = cycle as f64 / (2.0 * m as f64);
        println!(
            "   m={m:>2}: cycle {:>7} packets, mean wait for index {:>8.0} packets{}",
            fmt_thousands(cycle),
            mean_wait,
            if m == programs.eb().replication() {
                "   <- optimal m used"
            } else {
                ""
            },
        );
    }

    // (c) candidate-set sizes: NR's traversed regions vs EB's ellipse.
    let mut nr_sizes = 0usize;
    let mut eb_sizes = 0usize;
    for q in &queries {
        let rs = world.part.region_of(q.source);
        let rt = world.part.region_of(q.target);
        nr_sizes += world.pre.needed_regions(rs, rt).len();
        let ub = world.pre.minmax(rs, rt).max;
        eb_sizes += (0..world.part.num_regions() as RegionId)
            .filter(|&r| {
                r == rs || r == rt || {
                    let a = world.pre.minmax(rs, r);
                    let b = world.pre.minmax(r, rt);
                    !a.is_empty() && !b.is_empty() && a.min + b.min <= ub
                }
            })
            .count();
    }
    println!(
        "c) mean candidate regions of {}: NR {:.1} vs EB {:.1} (NR is the subset, §5)",
        world.part.num_regions(),
        nr_sizes as f64 / n,
        eb_sizes as f64 / n
    );

    // (d) §4.1's partitioning claim: kd-tree median splits vs a regular
    // grid of the same region count. The grid leaves cells empty/overfull,
    // which loosens both pruning rules.
    let regions = world.part.num_regions();
    let grid = spair_partition::GridPartition::build_square(&world.g, regions);
    let grid_pre = spair_core::BorderPrecomputation::run(&world.g, &grid);
    let mut grid_nr = 0usize;
    let mut grid_eb = 0usize;
    use spair_partition::Partitioning as _;
    for q in &queries {
        let rs = grid.region_of(q.source);
        let rt = grid.region_of(q.target);
        grid_nr += grid_pre.needed_regions(rs, rt).len();
        let ub = grid_pre.minmax(rs, rt).max;
        grid_eb += (0..grid.num_regions() as RegionId)
            .filter(|&r| {
                r == rs || r == rt || {
                    let a = grid_pre.minmax(rs, r);
                    let b = grid_pre.minmax(r, rt);
                    !a.is_empty() && !b.is_empty() && a.min + b.min <= ub
                }
            })
            .count();
    }
    let empties = grid
        .nodes_by_region()
        .iter()
        .filter(|nodes| nodes.is_empty())
        .count();
    println!(
        "d) kd vs regular grid ({} regions, {} empty grid cells): \
         mean candidates NR {:.1} (kd) vs {:.1} (grid), EB {:.1} (kd) vs {:.1} (grid)",
        grid.num_regions(),
        empties,
        nr_sizes as f64 / n,
        grid_nr as f64 / n,
        eb_sizes as f64 / n,
        grid_eb as f64 / n,
    );

    // (e) §8 future work: on-air kNN built on EB's index. Report pruning
    // (tuning vs cycle length) for a POI workload.
    let mut rng_pois = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(opts.seed + 70)
    };
    use rand::Rng as _;
    let mut pois: Vec<spair_roadnet::NodeId> = (0..world.g.num_nodes() / 50)
        .map(|_| rng_pois.gen_range(0..world.g.num_nodes()) as spair_roadnet::NodeId)
        .collect();
    pois.sort_unstable();
    pois.dedup();
    let knn_program = spair_core::KnnServer::new(&world.g, &world.part, &world.pre, &pois)
        .build_program()
        .expect("encode");
    let mut knn_client = spair_core::KnnClient::new(world.part.num_regions());
    let mut tuned = 0u64;
    let knn_queries = 25.min(n_queries);
    for (i, q) in queries.iter().take(knn_queries).enumerate() {
        let mut ch = spair_broadcast::BroadcastChannel::tune_in(
            knn_program.cycle(),
            (i * 97) % knn_program.cycle().len(),
            spair_broadcast::LossModel::Lossless,
        );
        let out = knn_client
            .query(&mut ch, q.source, q.source_pt, 4)
            .expect("knn");
        tuned += out.stats.tuning_packets;
    }
    println!(
        "e) on-air 4-NN over {} POIs (extension, §8): mean tuning {:.0} packets \
         vs cycle {} — EB-style min-bound pruning generalizes to kNN",
        pois.len(),
        tuned as f64 / knn_queries as f64,
        fmt_thousands(knn_program.cycle().len()),
    );
}

/// Figure 14: robustness to packet loss — tuning time and access latency.
fn fig14(opts: &Opts) {
    println!(
        "\n== Figure 14: Effect of packet loss (Germany @ {:.2}) ==",
        opts.scale
    );
    let world = default_world(opts);
    let programs = Programs::build(&world);
    let n_queries = queries_or(opts, 50);
    let queries = random_queries(&world.g, n_queries, opts.seed + 50);
    let rates = [0.001, 0.005, 0.01, 0.05, 0.10];
    for (title, pick) in [
        ("a) Tuning time (packets)", 0usize),
        ("b) Access latency (packets)", 1usize),
    ] {
        println!("\n-- {title} --");
        print!("{:<10}", "Method");
        for r in rates {
            print!(" {:>9.1}%", r * 100.0);
        }
        println!();
        for &m in &opts.methods {
            print!("{:<10}", m.label());
            for rate in rates {
                let results = run_method(&programs, m, &queries, rate, opts.seed + 51);
                let mut avg = Averages::default();
                for (_, s) in &results {
                    avg.push(s);
                }
                let v = if pick == 0 { avg.tuning } else { avg.latency };
                print!(" {:>10.0}", v);
            }
            println!();
        }
    }

    // Extension: bursty (Gilbert–Elliott) loss at the same stationary
    // rates, mean burst length 8 packets. Bursts can wipe a contiguous
    // index copy, which stresses the §6.2 recovery paths harder than
    // i.i.d. noise; answers stay exact either way.
    println!("\n-- extension: tuning under bursty loss (mean burst 8 packets) --");
    print!("{:<10}", "Method");
    for r in rates {
        print!(" {:>9.1}%", r * 100.0);
    }
    println!();
    for &m in &opts.methods {
        print!("{:<10}", m.label());
        for rate in rates {
            let seed = opts.seed + 52;
            let results = run_method_with_loss(&programs, m, &queries, seed, |i| {
                spair_broadcast::LossModel::bursty(rate, 8.0, seed.wrapping_add(i as u64))
            });
            let mut avg = Averages::default();
            for (_, s) in &results {
                avg.push(s);
            }
            print!(" {:>10.0}", avg.tuning);
        }
        println!();
    }
}
