//! Criterion micro-benchmarks for the precomputation pipeline and the
//! search kernels it rests on: serial vs parallel border-pair
//! precomputation, heap- vs bucket-queue Dijkstra, and the parallel
//! ArcFlag build. Complements `src/bin/bench_precompute.rs`, which runs
//! the acceptance-grade serial/parallel comparison and records it in
//! `BENCH_precompute.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use spair_baselines::arcflag::ArcFlagIndex;
use spair_core::BorderPrecomputation;
use spair_partition::KdTreePartition;
use spair_roadnet::dijkstra::{dijkstra_with_options, DijkstraOptions};
use spair_roadnet::parallel;
use spair_roadnet::{NetworkPreset, QueuePolicy};

fn bench_precompute_parallel(c: &mut Criterion) {
    let g = NetworkPreset::Milan.scaled_config(2, 0.05).generate();
    let part = KdTreePartition::build(&g, 16);
    c.bench_function("precompute/border_serial", |b| {
        b.iter(|| BorderPrecomputation::run_serial(&g, &part))
    });
    let threads = parallel::num_threads();
    c.bench_function(&format!("precompute/border_parallel_t{threads}"), |b| {
        b.iter(|| BorderPrecomputation::run_with_threads(&g, &part, threads))
    });
    c.bench_function("precompute/arcflag_serial", |b| {
        b.iter(|| ArcFlagIndex::build_with_threads(&g, &part, 1))
    });
    c.bench_function(&format!("precompute/arcflag_parallel_t{threads}"), |b| {
        b.iter(|| ArcFlagIndex::build_with_threads(&g, &part, threads))
    });
}

fn bench_queue_policies(c: &mut Criterion) {
    let g = NetworkPreset::Germany.scaled_config(1, 0.1).generate();
    let target = (g.num_nodes() / 2) as u32;
    for (name, queue) in [("heap", QueuePolicy::Heap), ("bucket", QueuePolicy::Bucket)] {
        c.bench_function(&format!("dijkstra/point_to_point_{name}"), |b| {
            b.iter(|| {
                dijkstra_with_options(
                    &g,
                    0,
                    DijkstraOptions {
                        target: Some(target),
                        bound: None,
                        queue,
                    },
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_precompute_parallel, bench_queue_policies
}
criterion_main!(benches);
