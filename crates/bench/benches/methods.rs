//! Criterion micro-benchmarks: index construction, cycle assembly and
//! client query processing for every method, on a moderate network.
//!
//! These complement the table/figure runners in `src/bin/experiments.rs`
//! (which print the paper's rows); the micro-benchmarks track the cost of
//! the individual building blocks so regressions are visible in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spair_bench::{random_queries, Method, Programs, World, PER_QUERY_METHODS};
use spair_broadcast::{BroadcastChannel, LossModel};
use spair_partition::{KdTreePartition, Partitioning};
use spair_roadnet::{dijkstra_full, dijkstra_to_target, NetworkPreset};

fn bench_world() -> World {
    World::build(NetworkPreset::Milan, 0.05, 16, 42)
}

fn bench_dijkstra(c: &mut Criterion) {
    let g = NetworkPreset::Germany.scaled_config(1, 0.1).generate();
    c.bench_function("dijkstra/full_tree", |b| b.iter(|| dijkstra_full(&g, 0)));
    c.bench_function("dijkstra/point_to_point", |b| {
        b.iter(|| dijkstra_to_target(&g, 0, (g.num_nodes() / 2) as u32))
    });
}

fn bench_precompute(c: &mut Criterion) {
    let g = NetworkPreset::Milan.scaled_config(2, 0.05).generate();
    c.bench_function("server/kd_partition_32", |b| {
        b.iter(|| KdTreePartition::build(&g, 32))
    });
    let part = KdTreePartition::build(&g, 16);
    c.bench_function("server/border_precompute_16", |b| {
        b.iter(|| spair_core::BorderPrecomputation::run(&g, &part))
    });
}

fn bench_program_builds(c: &mut Criterion) {
    let world = bench_world();
    c.bench_function("server/eb_program", |b| {
        b.iter(|| spair_core::EbServer::new(&world.g, &world.part, &world.pre).build_program())
    });
    c.bench_function("server/nr_program", |b| {
        b.iter(|| spair_core::NrServer::new(&world.g, &world.part, &world.pre).build_program())
    });
}

fn bench_clients(c: &mut Criterion) {
    let world = bench_world();
    let programs = Programs::build_tuned(&world, 8, 4);
    let queries = random_queries(&world.g, 16, 7);
    for m in PER_QUERY_METHODS {
        c.bench_function(&format!("client/{}", m.label()), |b| {
            let cycle = programs.cycle(m);
            let mut i = 0usize;
            b.iter_batched(
                || {
                    let q = queries[i % queries.len()];
                    i += 1;
                    (programs.client(m), q)
                },
                |(mut client, q)| {
                    let mut ch = BroadcastChannel::tune_in(cycle, 0, LossModel::Lossless);
                    client.query(&mut ch, &q).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_lossy_client(c: &mut Criterion) {
    let world = bench_world();
    let programs = Programs::build_tuned(&world, 8, 4);
    let q = random_queries(&world.g, 1, 11)[0];
    c.bench_function("client/NR_loss_5pct", |b| {
        let cycle = programs.cycle(Method::NR);
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                (
                    programs.client(Method::NR),
                    LossModel::bernoulli(0.05, seed),
                )
            },
            |(mut client, loss)| {
                let mut ch = BroadcastChannel::tune_in(cycle, 0, loss);
                client.query(&mut ch, &q).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_heavy_baselines(c: &mut Criterion) {
    use spair_baselines::hiti::HiTiIndex;
    use spair_baselines::hiti_air::{HiTiAirClient, HiTiAirServer};
    use spair_baselines::spq::SpqIndex;
    use spair_baselines::spq_air::{SpqAirServer, SpqClient};
    use spair_core::query::AirClient;

    let world = bench_world();
    c.bench_function("server/hiti_hierarchy", |b| {
        b.iter(|| HiTiIndex::build(&world.g, 8, 3))
    });
    let hiti = HiTiIndex::build(&world.g, 8, 3);
    c.bench_function("server/hiti_program", |b| {
        b.iter(|| HiTiAirServer::new(&world.g, &hiti).build_program())
    });
    let hiti_program = HiTiAirServer::new(&world.g, &hiti)
        .build_program()
        .expect("encode");
    let q = random_queries(&world.g, 1, 5)[0];
    c.bench_function("client/HiTi", |b| {
        b.iter(|| {
            let mut ch = BroadcastChannel::lossless(hiti_program.cycle());
            HiTiAirClient::new().query(&mut ch, &q).unwrap()
        })
    });

    let spq = SpqIndex::build(&world.g);
    c.bench_function("server/spq_program", |b| {
        b.iter(|| SpqAirServer::new(&world.g, &spq).build_program())
    });
    let spq_program = SpqAirServer::new(&world.g, &spq)
        .build_program()
        .expect("encode");
    c.bench_function("client/SPQ", |b| {
        b.iter(|| {
            let mut ch = BroadcastChannel::lossless(spq_program.cycle());
            SpqClient::new(spq_program.bbox())
                .query(&mut ch, &q)
                .unwrap()
        })
    });
}

fn bench_extensions(c: &mut Criterion) {
    use spair_core::{on_edge_query, KnnClient, KnnServer, OnEdgePoint};

    let world = bench_world();
    let programs = Programs::build_tuned(&world, 8, 4);

    // On-air kNN.
    let pois: Vec<u32> = world.g.node_ids().step_by(20).collect();
    let knn_program = KnnServer::new(&world.g, &world.part, &world.pre, &pois)
        .build_program()
        .expect("encode");
    c.bench_function("client/knn_k4", |b| {
        b.iter(|| {
            let mut ch = BroadcastChannel::lossless(knn_program.cycle());
            KnnClient::new(world.part.num_regions())
                .query(&mut ch, 0, world.g.point(0), 4)
                .unwrap()
        })
    });

    // On-edge queries through the NR client.
    let (u, v, w) = world
        .g
        .node_ids()
        .find_map(|x| {
            world
                .g
                .out_edges(x)
                .find(|&(y, wt)| wt >= 4 && world.g.weight_between(y, x) == Some(wt))
                .map(|(y, wt)| (x, y, wt))
        })
        .expect("splittable arc");
    let src = OnEdgePoint::on_undirected(&world.g, u, v, w / 2);
    let q = random_queries(&world.g, 1, 23)[0];
    let dst = OnEdgePoint::at_node(&world.g, q.target);
    c.bench_function("client/on_edge_via_nr", |b| {
        b.iter(|| {
            let mut client = programs.client(Method::NR);
            on_edge_query(&src, &dst, |q| {
                let mut ch = BroadcastChannel::lossless(programs.cycle(Method::NR));
                client.query(&mut ch, q)
            })
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dijkstra, bench_precompute, bench_program_builds, bench_clients,
        bench_lossy_client, bench_heavy_baselines, bench_extensions
}
criterion_main!(benches);
