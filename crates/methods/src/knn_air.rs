//! The §8 on-air kNN client behind the [`BroadcastMethod`] trait.
//!
//! Not an [`AirClient`]: its query
//! signature differs (source position, `k`), so it runs the `knn`
//! portion of a workload through [`crate::KnnAirClient`].

use crate::{
    BroadcastMethod, KnnAirClient, MethodDescriptor, MethodProgram, MethodUnavailable, World,
};
use spair_broadcast::{BroadcastChannel, BroadcastCycle};
use spair_core::knn::KnnOutcome;
use spair_core::query::{AirClient, QueryError};
use spair_core::{KnnClient, KnnProgram, KnnServer};
use spair_partition::Partitioning;
use spair_roadnet::{NodeId, Point, QueuePolicy};

/// The kNN method's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "knn_air",
    label: "kNN",
    ordinal: 8,
    shape: None,
    air_client: false,
    knn: true,
    on_edge: false,
    own_channel: true,
    population_replayable: false,
    patches_incrementally: false,
    reference_cycle: None,
};

/// The kNN method.
pub struct KnnAir;

/// kNN's built program.
pub struct KnnMethodProgram {
    program: KnnProgram,
    num_regions: usize,
}

impl KnnMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &KnnProgram {
        &self.program
    }
}

impl KnnAirClient for KnnClient {
    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        source: NodeId,
        source_pt: Point,
        k: usize,
    ) -> Result<KnnOutcome, QueryError> {
        KnnClient::query(self, ch, source, source_pt, k)
    }
}

impl MethodProgram for KnnMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Err(MethodUnavailable::NotAirClient(DESCRIPTOR.name))
    }

    fn make_knn_client(&self) -> Result<Box<dyn KnnAirClient>, MethodUnavailable> {
        Ok(Box::new(KnnClient::new(self.num_regions)))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for KnnAir {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        assert!(
            !world.pois.is_empty(),
            "knn_air needs a POI set (World::with_pois)"
        );
        Box::new(KnnMethodProgram {
            // A world exceeding a wire field of the index format is a
            // configuration error; surface the typed encode error loudly
            // rather than broadcasting a truncated index.
            program: KnnServer::new(&world.g, &world.part, &world.pre, &world.pois)
                .build_program()
                .unwrap_or_else(|e| panic!("knn_air: {e}")),
            num_regions: world.part.num_regions(),
        })
    }
}
