//! A* on air: goal-directed search over the received network.
//!
//! Same broadcast program as DJ — the raw network data, the shortest
//! possible cycle — but the client runs `spair_roadnet::astar` instead
//! of Dijkstra, with a geometric lower bound derived **from the received
//! data itself**: the paper dismisses a-priori A* bounds for road
//! networks (§2.1), yet once the whole network is on the device the
//! client can *measure* the tightest admissible scale factor
//!
//! ```text
//! c = min over received edges e with |e| > 0 of (w(e) - 1) / |e|
//! ```
//!
//! and use `h(v) = floor(c · |v, target|)`. Using `w - 1` (not `w`)
//! absorbs the integer floor: `h(v) - h(u) ≤ c·|v,u| + 1 ≤ w(v,u)`, so
//! the bound is *consistent* — A* settles each node once and stays
//! exact — and admissible (`h(v) ≤ Σ (w-1) ≤ d(v, t)` along any path).
//! On metric-ish networks (the paper's presets) this prunes the search
//! toward the target; on adversarial weights `c` degrades to 0 and the
//! search degenerates to plain Dijkstra, still exact.
//!
//! Tuning time and latency are DJ's (the whole cycle either way); the
//! win is client CPU — fewer settled nodes per query.

use crate::received::receive_network;
use crate::{
    BroadcastMethod, MethodDescriptor, MethodProgram, MethodUnavailable, SessionShape, World,
};
use spair_baselines::{DjProgram, DjServer};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, CpuMeter, MemoryMeter, QueryStats};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_roadnet::astar::{astar_search, LowerBound};
use spair_roadnet::{Distance, NodeId, Point, QueuePolicy, RoadNetwork};

/// The A*-on-air descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "astar_air",
    label: "A*",
    ordinal: 9,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    reference_cycle: None,
};

/// The A*-on-air method.
pub struct AstarAir;

/// A*'s built program (DJ's data-only cycle).
pub struct AstarMethodProgram {
    program: DjProgram,
}

impl MethodProgram for AstarMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(AstarAirClient))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for AstarAir {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        Box::new(AstarMethodProgram {
            program: DjServer::new(&world.g).build_program(),
        })
    }
}

/// The measured geometric bound: `floor(c · euclid(v, target))`.
struct MeasuredBound {
    c: f64,
    points: Vec<Point>,
    target_pt: Point,
}

impl MeasuredBound {
    /// Measures the scale factor over the received edges. The safety
    /// shrink counters f64 round-off in the ratio computation; `w - 1`
    /// in the numerator is what makes the floored bound consistent.
    fn measure(g: &RoadNetwork) -> f64 {
        let mut c = f64::INFINITY;
        for v in g.node_ids() {
            let pv = g.point(v);
            for (u, w) in g.out_edges(v) {
                let d = pv.euclidean(&g.point(u));
                if d > 1e-12 {
                    c = c.min((w.saturating_sub(1)) as f64 / d);
                }
            }
        }
        if c.is_finite() {
            (c * (1.0 - 1e-9)).max(0.0)
        } else {
            0.0
        }
    }
}

impl LowerBound for MeasuredBound {
    fn lower_bound(&self, v: NodeId, _target: NodeId) -> Distance {
        (self.c * self.points[v as usize].euclidean(&self.target_pt)).floor() as Distance
    }
}

/// The A*-on-air client.
struct AstarAirClient;

impl AirClient for AstarAirClient {
    fn method_name(&self) -> &'static str {
        "A*-air"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }
        let net = receive_network(ch, &mut mem)?;
        let (Some(&s), Some(&t)) = (net.to_dense.get(&q.source), net.to_dense.get(&q.target))
        else {
            return Err(QueryError::Unreachable);
        };
        let (res, stats) = cpu.time(|| {
            let bound = MeasuredBound {
                c: MeasuredBound::measure(&net.g),
                points: net.g.node_ids().map(|v| net.g.point(v)).collect(),
                target_pt: net.g.point(t),
            };
            astar_search(&net.g, s, t, &bound)
        });
        let stats_out = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: stats.settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path: net.path_to_orig(&path),
                stats: stats_out,
            }),
            None => Err(QueryError::Unreachable),
        }
    }
}
