//! A* on air: goal-directed search over the received network.
//!
//! Same broadcast program as DJ — the raw network data, the shortest
//! possible cycle — but the client runs `spair_roadnet::astar` instead
//! of Dijkstra, with a geometric lower bound derived **from the received
//! data itself**: the paper dismisses a-priori A* bounds for road
//! networks (§2.1), yet once the whole network is on the device the
//! client can *measure* the tightest admissible scale factor
//!
//! ```text
//! c = min over received edges e with |e| > 0 of w(e) / |e|
//! ```
//!
//! and use `h(v) = max(ceil(c · |v, target|) - 1, 0)`. The `- 1` outside
//! the ceiling absorbs integer rounding: `h(v) - h(u) =
//! ceil(c·|v,t|) - ceil(c·|u,t|) ≤ ceil(c·|v,u|) ≤ w(v,u)` (triangle
//! inequality, then `c·|v,u| ≤ w`), so the bound is *consistent* — A*
//! settles each node once and stays exact — and admissible
//! (`ceil(x) - 1 ≤ x`, and `c·|v,t| ≤ d(v, t)` along any path). An
//! earlier form used `(w - 1) / |e|` with a floor, which is also
//! consistent but collapses to `c = 0` — plain Dijkstra — the moment any
//! received edge has weight 1, precisely the short unit-ish edges road
//! networks are full of. On truly adversarial weights (a zero-weight
//! edge) `c` still degrades to 0 and the search degenerates to plain
//! Dijkstra, still exact.
//!
//! Tuning time and latency are DJ's (the whole cycle either way); the
//! win is client CPU — fewer settled nodes per query.

use crate::received::receive_network;
use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::{DjProgram, DjServer};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, CpuMeter, MemoryMeter, QueryStats};
use spair_core::netcodec::ReceivedGraph;
use spair_core::patch::{ClientArena, Coverage};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_roadnet::astar::{astar_search, LowerBound};
use spair_roadnet::{Distance, NodeId, Point, QueuePolicy, RoadNetwork};

/// The A*-on-air descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "astar_air",
    label: "A*",
    ordinal: 9,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: true,
    reference_cycle: None,
};

/// The A*-on-air method.
pub struct AstarAir;

/// A*'s built program (DJ's data-only cycle).
pub struct AstarMethodProgram {
    program: DjProgram,
}

impl MethodProgram for AstarMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(AstarAirClient::default()))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for AstarAir {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        Box::new(AstarMethodProgram {
            program: DjServer::new(&world.g).build_program(),
        })
    }

    fn make_remote_client(
        &self,
        _bootstrap: &ClientBootstrap,
        _queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(AstarAirClient::default()))
    }
}

/// The measured geometric bound: `max(ceil(c · euclid(v, target)) - 1, 0)`.
struct MeasuredBound {
    c: f64,
    points: Vec<Point>,
    target_pt: Point,
}

impl MeasuredBound {
    /// Measures the scale factor over the received edges. The safety
    /// shrink counters f64 round-off in the ratio computation and keeps
    /// the ceiling-based bound strictly inside its consistency margin;
    /// the `- 1` lives in [`LowerBound::lower_bound`], not here, so
    /// weight-1 edges no longer zero the factor.
    fn measure(g: &RoadNetwork) -> f64 {
        let mut c = f64::INFINITY;
        for v in g.node_ids() {
            let pv = g.point(v);
            for (u, w) in g.out_edges(v) {
                let d = pv.euclidean(&g.point(u));
                if d > 1e-12 {
                    c = c.min(w as f64 / d);
                }
            }
        }
        if c.is_finite() {
            (c * (1.0 - 1e-6)).max(0.0)
        } else {
            0.0
        }
    }
}

impl LowerBound for MeasuredBound {
    fn lower_bound(&self, v: NodeId, _target: NodeId) -> Distance {
        let x = self.c * self.points[v as usize].euclidean(&self.target_pt);
        (x.ceil() as Distance).saturating_sub(1)
    }
}

/// The A*-on-air client.
#[derive(Default)]
struct AstarAirClient {
    /// Reusable receive/search arenas (cleared per session).
    store: ReceivedGraph,
}

impl AirClient for AstarAirClient {
    fn method_name(&self) -> &'static str {
        "A*-air"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }
        let net = receive_network(ch, &mut mem, &mut self.store)?;
        let (Some(s), Some(t)) = (net.dense(q.source), net.dense(q.target)) else {
            return Err(QueryError::Unreachable);
        };
        let (res, stats) = cpu.time(|| {
            let bound = MeasuredBound {
                c: MeasuredBound::measure(&net.g),
                points: net.g.node_ids().map(|v| net.g.point(v)).collect(),
                target_pt: net.g.point(t),
            };
            astar_search(&net.g, s, t, &bound)
        });
        let stats_out = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: stats.settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path: net.path_to_orig(&path),
                stats: stats_out,
            }),
            None => Err(QueryError::Unreachable),
        }
    }

    fn export_arena(&mut self) -> Option<ClientArena> {
        Some(ClientArena {
            store: std::mem::take(&mut self.store),
            coverage: Coverage::Whole,
        })
    }
}
