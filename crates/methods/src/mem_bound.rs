//! The §6.1 memory-bound runner behind the [`BroadcastMethod`] trait.
//!
//! This method broadcasts **no cycle of its own**: it re-processes NR's
//! region data through the client-side super-edge contraction, so its
//! descriptor says `own_channel: false` and names `nr` as the reference
//! whose cycle length its cell reports quote — explicitly, instead of the
//! old engine's silent "return NR's cycle and hope the caller knows"
//! aliasing. Channel costs are not simulated (the data is NR's own
//! region set); the stats carry the contraction's memory/CPU, which is
//! the quantity §6.1 is about.

use crate::{BroadcastMethod, MethodDescriptor, MethodProgram, MethodUnavailable, World};
use spair_broadcast::{BroadcastCycle, QueryStats};
use spair_core::netcodec::{decode_payload, encode_nodes_with_borders, ReceivedGraph};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_core::{BorderPrecomputation, MemoryBoundProcessor};
use spair_partition::{KdTreePartition, Partitioning};
use spair_roadnet::{NodeId, QueuePolicy};
use std::sync::Arc;

/// The memory-bound runner's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "nr_mem_bound",
    label: "NR mem-bound",
    ordinal: 7,
    shape: None,
    air_client: false,
    knn: false,
    on_edge: true,
    own_channel: false,
    population_replayable: false,
    patches_incrementally: false,
    reference_cycle: Some("nr"),
};

/// The memory-bound method.
pub struct NrMemBound;

/// The memory-bound "program": the fully decoded region store (what a
/// lossless NR client would hold) plus the partition/precomputation
/// needed to contract it. Cell reports quote the reference (`nr`)
/// cycle's length — the harness resolves that through its program set
/// (`ScenarioContext::reported_cycle_packets`), reusing an
/// already-built NR program instead of this method building its own.
pub struct MemBoundProgram {
    part: Arc<KdTreePartition>,
    pre: Arc<BorderPrecomputation>,
    store: ReceivedGraph,
}

impl MethodProgram for MemBoundProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Err(MethodUnavailable::NoOwnChannel {
            method: DESCRIPTOR.name,
            reference: "nr",
        })
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Err(MethodUnavailable::NotAirClient(DESCRIPTOR.name))
    }

    fn local_answer(
        &self,
        q: &Query,
        queue: QueuePolicy,
    ) -> Option<Result<QueryOutcome, QueryError>> {
        let rs = self.part.region_of(q.source);
        let rt = self.part.region_of(q.target);
        let mut proc = MemoryBoundProcessor::with_paths().with_queue_policy(queue);
        for r in self.pre.needed_regions(rs, rt).iter() {
            let nodes = &self.part.nodes_by_region()[r as usize];
            let terminals: Vec<NodeId> = [q.source, q.target]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&self.store, nodes, &terminals);
        }
        Some(match proc.shortest_path(q.source, q.target) {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path,
                stats: QueryStats {
                    peak_memory_bytes: proc.mem.peak(),
                    cpu: proc.cpu.total(),
                    ..QueryStats::default()
                },
            }),
            None => Err(QueryError::Unreachable),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for NrMemBound {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        // Decode every region's broadcast payloads into one store — the
        // §6.1 runner contracts regions straight from this data.
        let mut store = ReceivedGraph::new();
        for r in 0..world.part.num_regions() {
            let nodes = &world.part.nodes_by_region()[r];
            for payload in
                encode_nodes_with_borders(&world.g, nodes, |v| world.pre.borders().is_border(v))
            {
                for rec in decode_payload(&payload).expect("server-encoded payload") {
                    store.ingest(rec);
                }
            }
        }
        Box::new(MemBoundProgram {
            part: world.part.clone(),
            pre: world.pre.clone(),
            store,
        })
    }
}
