//! Landmark / ALT (§2.1, §3.2) behind the [`BroadcastMethod`] trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::landmark::LandmarkIndex;
use spair_baselines::{LandmarkClient, LandmarkProgram, LandmarkServer};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_roadnet::QueuePolicy;

/// LD's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "ld",
    label: "Landmark",
    ordinal: 3,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: false,
    reference_cycle: None,
};

/// The Landmark method.
pub struct Landmark;

/// LD's built program.
pub struct LandmarkMethodProgram {
    program: LandmarkProgram,
    precompute_secs: f64,
}

impl LandmarkMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &LandmarkProgram {
        &self.program
    }
}

impl MethodProgram for LandmarkMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(LandmarkClient::new()))
    }

    fn precompute_secs(&self) -> f64 {
        self.precompute_secs
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for Landmark {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        let index = LandmarkIndex::build(&world.g, world.tuning.ld_landmarks);
        let precompute_secs = index.precompute_secs;
        Box::new(LandmarkMethodProgram {
            program: LandmarkServer::new(&world.g, &index).build_program(),
            precompute_secs,
        })
    }

    fn make_remote_client(
        &self,
        _bootstrap: &ClientBootstrap,
        _queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(LandmarkClient::new()))
    }
}
