//! Next Region (§5) behind the [`BroadcastMethod`] trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_core::{NrClient, NrProgram, NrServer, NrSummary};
use spair_roadnet::QueuePolicy;

/// NR's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "nr",
    label: "NR",
    ordinal: 0,
    shape: Some(SessionShape::Anchored),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: true,
    reference_cycle: None,
};

/// The NR method.
pub struct Nr;

/// NR's built program.
pub struct NrMethodProgram {
    program: NrProgram,
}

impl NrMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &NrProgram {
        &self.program
    }
}

impl MethodProgram for NrMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(
            NrClient::new(self.program.summary()).with_queue_policy(queue),
        ))
    }

    fn client_bootstrap(&self) -> ClientBootstrap {
        ClientBootstrap {
            num_regions: self.program.summary().num_regions,
            bbox: None,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for Nr {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        Box::new(NrMethodProgram {
            // A world exceeding a wire field of the index format is a
            // configuration error; surface the typed encode error loudly
            // rather than broadcasting a truncated index.
            program: NrServer::new(&world.g, &world.part, &world.pre)
                .build_program()
                .unwrap_or_else(|e| panic!("nr: {e}")),
        })
    }

    fn make_remote_client(
        &self,
        bootstrap: &ClientBootstrap,
        queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(
            NrClient::new(NrSummary {
                num_regions: bootstrap.num_regions,
            })
            .with_queue_policy(queue),
        ))
    }
}
