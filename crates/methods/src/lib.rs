//! The unified method registry: every client method behind one
//! [`BroadcastMethod`] trait.
//!
//! The paper's whole point is comparing many client methods (NR and EB
//! against DJ/LD/AF/SPQ/HiTi) over one broadcast abstraction, yet adding
//! a method used to mean editing parallel `match` blocks in the sim
//! engine, the load harness and the bench harness. This crate collapses
//! those surfaces into data:
//!
//! * a [`MethodDescriptor`] names each method once — stable registry
//!   name, matrix ordinal (seed derivation and column order), its
//!   [`SessionShape`] and its capability flags (`air_client`, `knn`,
//!   `on_edge`, `own_channel`, `population_replayable`);
//! * the [`BroadcastMethod`] trait turns a [`World`] (network, partition,
//!   border precomputation, POIs, tuning knobs) into a
//!   [`MethodProgram`] — the server-side broadcast program plus client
//!   factories;
//! * the [`MethodRegistry`] owns the method implementations in ordinal
//!   order, and a [`ProgramSet`] lazily builds at most one program per
//!   method for one world, replacing per-harness `Option` fields and
//!   their `expect` panics with typed [`MethodUnavailable`] errors.
//!
//! **Adding a method is a one-file change**: implement
//! [`BroadcastMethod`] (descriptor + program + client) in a new module
//! and append one registration line in [`MethodRegistry::standard`]'s
//! method list. The conformance matrix, the load harness and the bench
//! runner all iterate the registry, so the new method appears as a
//! matrix column, is differentially verified against the serial Dijkstra
//! oracle, and can serve populations — with zero further edits. The two
//! newest methods, [`astar_air`] and [`bidi_air`], were added exactly
//! this way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arcflag;
pub mod astar_air;
pub mod bidi_air;
pub mod dj;
pub mod eb;
pub mod hiti_air;
pub mod knn_air;
pub mod landmark;
pub mod mem_bound;
pub mod nr;
mod received;
pub mod spq_air;

use spair_broadcast::{BroadcastChannel, BroadcastCycle};
use spair_core::knn::KnnOutcome;
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_core::BorderPrecomputation;
use spair_partition::KdTreePartition;
use spair_roadnet::{NetworkPreset, NodeId, Point, QueuePolicy, RoadNetwork};
use std::sync::{Arc, OnceLock};

/// How a method's client consumes the broadcast cycle — which decides how
/// a lossless session replays across tune-in offsets in the load harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionShape {
    /// Downloads one full cycle from the tune-in offset; stats are
    /// offset-independent (DJ, LD, AF, SPQ, A*, bidirectional).
    WholeCycle,
    /// Listens to one packet, then sleeps to the pointed-at index copy;
    /// the continuation depends only on (query, anchor) (NR, EB, HiTi).
    Anchored,
}

/// Everything the harnesses need to know about a method without running
/// it: its stable identity and its capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodDescriptor {
    /// Stable registry key and matrix column name (e.g. `"nr"`).
    pub name: &'static str,
    /// Chart label as used in the paper's figures (e.g. `"NR"`,
    /// `"Dijkstra"`).
    pub label: &'static str,
    /// Stable matrix ordinal: position in the registry, never reused.
    /// Session seeds derive from it, so appending methods never perturbs
    /// existing cells.
    pub ordinal: u32,
    /// Cycle-consumption shape of the method's [`AirClient`] — `None`
    /// for methods not driven through that interface.
    pub shape: Option<SessionShape>,
    /// Answers point-to-point / on-edge queries through the
    /// [`AirClient`] interface.
    pub air_client: bool,
    /// Answers the kNN portion of a workload (the §8 client).
    pub knn: bool,
    /// Runs the on-edge (§5 closing remark) decomposition.
    pub on_edge: bool,
    /// Broadcasts a cycle of its own. The §6.1 memory-bound runner does
    /// not: it re-processes NR's region data, and
    /// [`MethodDescriptor::reference_cycle`] names whose cycle its
    /// reports quote — explicitly, instead of silently aliasing.
    pub own_channel: bool,
    /// Lossless populations replay in O(1) per client from per-anchor
    /// session profiles in the load harness.
    pub population_replayable: bool,
    /// In a dynamic world (live weight updates broadcast as versioned
    /// patch cycles) the client can patch its received arena in place —
    /// it holds raw adjacency data and exports it via
    /// [`AirClient::export_arena`] (NR, EB, DJ, A*, bidirectional).
    /// Index-transforming methods (LD, AF, SPQ, HiTi, §6.1 mem-bound,
    /// kNN) bake weights into derived structures and must rebuild from a
    /// fresh full cycle per version.
    pub patches_incrementally: bool,
    /// For methods without [`MethodDescriptor::own_channel`]: the
    /// registry name of the method whose cycle length their cell reports
    /// quote.
    pub reference_cycle: Option<&'static str>,
}

impl MethodDescriptor {
    /// Whether the method answers the point-to-point / on-edge portion
    /// of a workload (everything except the kNN client).
    pub fn runs_paths(&self) -> bool {
        !self.knn
    }
}

/// A copyable handle to a registered method — the identifier type specs
/// and harnesses pass around. Obtain one from a registry lookup
/// ([`MethodRegistry::get`]) or, for the paper's nine methods, from the
/// associated constants ([`MethodId::NR`], …).
#[derive(Clone, Copy)]
pub struct MethodId(&'static MethodDescriptor);

impl MethodId {
    /// Next Region (§5).
    pub const NR: MethodId = MethodId(&nr::DESCRIPTOR);
    /// Elliptic Boundary (§4).
    pub const EB: MethodId = MethodId(&eb::DESCRIPTOR);
    /// Dijkstra on air (whole-cycle download).
    pub const DJ: MethodId = MethodId(&dj::DESCRIPTOR);
    /// Landmark / ALT.
    pub const LD: MethodId = MethodId(&landmark::DESCRIPTOR);
    /// ArcFlag.
    pub const AF: MethodId = MethodId(&arcflag::DESCRIPTOR);
    /// SPQ quadtree baseline on air.
    pub const SPQ_AIR: MethodId = MethodId(&spq_air::DESCRIPTOR);
    /// HiTi hierarchy baseline on air.
    pub const HITI_AIR: MethodId = MethodId(&hiti_air::DESCRIPTOR);
    /// NR's region set through the §6.1 memory-bound contraction.
    pub const NR_MEM_BOUND: MethodId = MethodId(&mem_bound::DESCRIPTOR);
    /// The §8 on-air kNN client.
    pub const KNN_AIR: MethodId = MethodId(&knn_air::DESCRIPTOR);

    /// The method's descriptor.
    pub fn descriptor(&self) -> &'static MethodDescriptor {
        self.0
    }

    /// Stable registry name / matrix column key.
    pub fn name(&self) -> &'static str {
        self.0.name
    }

    /// Chart label.
    pub fn label(&self) -> &'static str {
        self.0.label
    }

    /// Stable matrix ordinal.
    pub fn ordinal(&self) -> u32 {
        self.0.ordinal
    }

    /// Whether this method answers the point-to-point / on-edge portion
    /// of a workload.
    pub fn runs_paths(&self) -> bool {
        self.0.runs_paths()
    }
}

impl PartialEq for MethodId {
    fn eq(&self, other: &Self) -> bool {
        self.0.ordinal == other.0.ordinal
    }
}

impl Eq for MethodId {}

impl std::hash::Hash for MethodId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.ordinal.hash(state);
    }
}

impl std::fmt::Debug for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MethodId({})", self.0.name)
    }
}

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0.name)
    }
}

/// Why a method (or one of its facets) cannot be used — the typed
/// replacement for the old `expect("… program")` panics and
/// `unreachable!` dispatch arms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodUnavailable {
    /// No registered method has this name.
    Unknown(String),
    /// The method is registered but no program was built for this world
    /// (it was not requested, or its workload portion is empty).
    NotBuilt(&'static str),
    /// The method broadcasts no cycle of its own; its reports quote the
    /// named reference method's cycle instead (§6.1 memory-bound runner).
    NoOwnChannel {
        /// The channel-less method.
        method: &'static str,
        /// Whose cycle its reports quote.
        reference: &'static str,
    },
    /// The method is not driven through the [`AirClient`] interface.
    NotAirClient(&'static str),
    /// The method is not a kNN client.
    NotKnn(&'static str),
    /// The admission bootstrap lacks a field the method's remote client
    /// requires (serving daemon and client process disagree about the
    /// method).
    BadBootstrap(&'static str),
}

impl std::fmt::Display for MethodUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodUnavailable::Unknown(name) => {
                write!(f, "no registered method is named '{name}'")
            }
            MethodUnavailable::NotBuilt(name) => {
                write!(f, "no {name} program was built for this world")
            }
            MethodUnavailable::NoOwnChannel { method, reference } => write!(
                f,
                "{method} broadcasts no cycle of its own (reports quote {reference}'s cycle)"
            ),
            MethodUnavailable::NotAirClient(name) => {
                write!(f, "{name} is not an air client method")
            }
            MethodUnavailable::NotKnn(name) => write!(f, "{name} is not a kNN client method"),
            MethodUnavailable::BadBootstrap(name) => {
                write!(
                    f,
                    "{name}'s remote client is missing a required bootstrap field"
                )
            }
        }
    }
}

impl std::error::Error for MethodUnavailable {}

/// Per-method tuning knobs — the parameters the paper fine-tunes per
/// experiment (§7) rather than per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// ArcFlag region count. `None` reuses the world's partition (the
    /// scenario engine's choice); `Some(r)` builds AF its own kd
    /// partition with `r` regions (the bench harness's fine-tuned 16).
    pub af_regions: Option<usize>,
    /// Landmark anchor count (the paper's fine-tuned 4).
    pub ld_landmarks: usize,
    /// HiTi base-grid side (power of two).
    pub hiti_side: usize,
    /// HiTi hierarchy levels.
    pub hiti_levels: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Self {
            af_regions: None,
            ld_landmarks: 4,
            hiti_side: 8,
            hiti_levels: 3,
        }
    }
}

/// Everything a method's server side may need to build its program:
/// the network, its partition and border precomputation, the POI set
/// (for the kNN method) and the tuning knobs. Cheap to clone — the big
/// products are shared behind [`Arc`]s, so programs can retain exactly
/// the parts they need.
#[derive(Clone)]
pub struct World {
    /// The road network.
    pub g: Arc<RoadNetwork>,
    /// Kd partitioning (EB/NR/kNN; AF when untuned).
    pub part: Arc<KdTreePartition>,
    /// Border-pair precomputation shared by EB/NR/kNN/mem-bound.
    pub pre: Arc<BorderPrecomputation>,
    /// POI node set (the kNN method's program input; empty otherwise).
    pub pois: Arc<Vec<NodeId>>,
    /// Per-method tuning knobs.
    pub tuning: Tuning,
}

impl World {
    /// Wraps freshly built parts into a world with default tuning and no
    /// POIs.
    pub fn from_parts(g: RoadNetwork, part: KdTreePartition, pre: BorderPrecomputation) -> Self {
        Self {
            g: Arc::new(g),
            part: Arc::new(part),
            pre: Arc::new(pre),
            pois: Arc::new(Vec::new()),
            tuning: Tuning::default(),
        }
    }

    /// Builds the world for a preset at `scale`, partitioned into
    /// `regions` kd regions — the bench harness's §7 construction.
    pub fn build(preset: NetworkPreset, scale: f64, regions: usize, seed: u64) -> Self {
        let g = preset.scaled_config(seed, scale).generate();
        let part = KdTreePartition::build(&g, regions);
        let pre = BorderPrecomputation::run(&g, &part);
        Self::from_parts(g, part, pre)
    }

    /// Replaces the POI set.
    pub fn with_pois(mut self, pois: Vec<NodeId>) -> Self {
        self.pois = Arc::new(pois);
        self
    }

    /// Replaces the tuning knobs.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }
}

/// The a-priori knowledge a client needs to tune in to a method's cycle
/// from across a process boundary — the serving daemon ships this blob
/// in its admission reply so remote client processes can build an
/// [`AirClient`] without ever seeing the server's [`World`].
///
/// It is deliberately tiny: the paper's clients assume almost nothing
/// beyond "which method the channel carries" (EB/NR need the region
/// count, SPQ its quadtree bounding box; everything else starts blind
/// and learns the rest from the packets themselves).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientBootstrap {
    /// Kd region count (NR, EB, AF; 0 where unused).
    pub num_regions: usize,
    /// Quadtree bounding box (SPQ; `None` elsewhere).
    pub bbox: Option<(Point, Point)>,
}

/// The interface the harnesses drive kNN programs through (the §8
/// client's query signature differs from [`AirClient`]'s).
pub trait KnnAirClient {
    /// Finds the `k` POIs nearest to `source` over a tuned-in channel.
    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        source: NodeId,
        source_pt: Point,
        k: usize,
    ) -> Result<KnnOutcome, QueryError>;
}

/// A built broadcast program: the server-side cycle plus client
/// factories. Facets a method does not support return typed
/// [`MethodUnavailable`] errors instead of panicking.
pub trait MethodProgram: Send + Sync {
    /// The method's descriptor.
    fn descriptor(&self) -> &'static MethodDescriptor;

    /// The broadcast cycle clients tune in to.
    /// `Err(NoOwnChannel)` for methods that broadcast none.
    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable>;

    /// A fresh client device (every session models an independent mobile
    /// client). `Err(NotAirClient)` for methods not driven through the
    /// [`AirClient`] interface.
    fn make_client(&self, queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable>;

    /// A fresh kNN client. `Err(NotKnn)` unless the method answers the
    /// kNN portion.
    fn make_knn_client(&self) -> Result<Box<dyn KnnAirClient>, MethodUnavailable> {
        Err(MethodUnavailable::NotKnn(self.descriptor().name))
    }

    /// The a-priori blob a remote client process needs before tuning in
    /// (shipped by the serving daemon in its admission reply). Methods
    /// whose clients start blind keep the empty default.
    fn client_bootstrap(&self) -> ClientBootstrap {
        ClientBootstrap::default()
    }

    /// Channel-free local answer for methods that re-process another
    /// method's data instead of tuning in (§6.1 memory-bound
    /// contraction). `None` for everything else.
    fn local_answer(
        &self,
        query: &Query,
        queue: QueuePolicy,
    ) -> Option<Result<QueryOutcome, QueryError>> {
        let _ = (query, queue);
        None
    }

    /// Server-side index precomputation seconds, where the method
    /// measures one (Table 3 context); 0 otherwise.
    fn precompute_secs(&self) -> f64 {
        0.0
    }

    /// Downcast hook for harness extensions that need a concrete
    /// program (e.g. EB's replication ablation).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// One client method: a descriptor plus a program builder. Implement
/// this (one file) and register it (one line in
/// [`MethodRegistry::standard`]) to add a method to every harness.
pub trait BroadcastMethod: Send + Sync {
    /// The method's descriptor.
    fn descriptor(&self) -> &'static MethodDescriptor;

    /// Builds the server-side broadcast program for a world.
    fn build_program(&self, world: &World) -> Box<dyn MethodProgram>;

    /// A fresh client built from a [`ClientBootstrap`] alone — the
    /// remote twin of [`MethodProgram::make_client`] for client
    /// processes that hold no program (they receive the cycle over a
    /// socket). `Err(NotAirClient)` for methods not driven through the
    /// [`AirClient`] interface.
    fn make_remote_client(
        &self,
        bootstrap: &ClientBootstrap,
        queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        let _ = (bootstrap, queue);
        Err(MethodUnavailable::NotAirClient(self.descriptor().name))
    }
}

/// The ordered method registry.
pub struct MethodRegistry {
    methods: Vec<Box<dyn BroadcastMethod>>,
}

impl MethodRegistry {
    /// The standard registry: every implemented method, in stable
    /// ordinal order. **Appending a line here is the registration step
    /// of adding a method.**
    pub fn standard() -> &'static MethodRegistry {
        static REGISTRY: OnceLock<MethodRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            MethodRegistry::from_methods(vec![
                Box::new(nr::Nr),
                Box::new(eb::Eb),
                Box::new(dj::Dj),
                Box::new(landmark::Landmark),
                Box::new(arcflag::ArcFlag),
                Box::new(spq_air::SpqAir),
                Box::new(hiti_air::HiTiAir),
                Box::new(mem_bound::NrMemBound),
                Box::new(knn_air::KnnAir),
                Box::new(astar_air::AstarAir),
                Box::new(bidi_air::BidiAir),
            ])
        })
    }

    /// Builds the registry, checking the descriptor invariants: ordinals
    /// equal positions, names are unique, reference cycles resolve.
    /// Private on purpose: a [`MethodId`] resolves by ordinal against
    /// [`MethodRegistry::standard`] (in [`ProgramSet`] and
    /// [`MethodRegistry::method`]), so handles from a divergent registry
    /// would resolve to the wrong method.
    fn from_methods(methods: Vec<Box<dyn BroadcastMethod>>) -> Self {
        let reg = Self { methods };
        for (i, m) in reg.methods.iter().enumerate() {
            let d = m.descriptor();
            assert_eq!(
                d.ordinal as usize, i,
                "method '{}' registered out of ordinal order",
                d.name
            );
            assert!(
                reg.methods[..i]
                    .iter()
                    .all(|o| o.descriptor().name != d.name),
                "duplicate method name '{}'",
                d.name
            );
            if let Some(r) = d.reference_cycle {
                assert!(
                    reg.methods.iter().any(|o| o.descriptor().name == r),
                    "method '{}' references unknown cycle '{}'",
                    d.name,
                    r
                );
            }
        }
        reg
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Every registered method, in matrix column (ordinal) order.
    pub fn all(&self) -> Vec<MethodId> {
        self.methods
            .iter()
            .map(|m| MethodId(m.descriptor()))
            .collect()
    }

    /// Every method driven through the [`AirClient`] interface with a
    /// cycle of its own — the set the load harness can serve.
    pub fn air_methods(&self) -> Vec<MethodId> {
        self.all()
            .into_iter()
            .filter(|m| {
                let d = m.descriptor();
                d.air_client && d.own_channel
            })
            .collect()
    }

    /// Looks a method up by its stable name.
    pub fn get(&self, name: &str) -> Result<MethodId, MethodUnavailable> {
        self.methods
            .iter()
            .find(|m| m.descriptor().name == name)
            .map(|m| MethodId(m.descriptor()))
            .ok_or_else(|| MethodUnavailable::Unknown(name.to_string()))
    }

    /// The implementation behind a handle.
    pub fn method(&self, id: MethodId) -> &dyn BroadcastMethod {
        self.methods[id.ordinal() as usize].as_ref()
    }

    /// A remote client for `id` from its admission bootstrap — the
    /// lookup the serving daemon's client processes go through.
    pub fn remote_client(
        &self,
        id: MethodId,
        bootstrap: &ClientBootstrap,
        queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        self.method(id).make_remote_client(bootstrap, queue)
    }
}

/// Lazy per-method programs for one world — the registry-driven
/// replacement for per-harness `Option<…Program>` fields. Each method's
/// program is built at most once, on first [`ProgramSet::ensure`];
/// [`ProgramSet::get`] never builds and returns a typed
/// [`MethodUnavailable::NotBuilt`] for absent programs.
pub struct ProgramSet {
    world: World,
    slots: Vec<OnceLock<Box<dyn MethodProgram>>>,
}

impl ProgramSet {
    /// An empty set over `world`, sized to the standard registry.
    pub fn new(world: World) -> Self {
        let slots = (0..MethodRegistry::standard().len())
            .map(|_| OnceLock::new())
            .collect();
        Self { world, slots }
    }

    /// The world programs build against.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The method's program, building it on first use.
    pub fn ensure(&self, id: MethodId) -> &dyn MethodProgram {
        self.slots[id.ordinal() as usize]
            .get_or_init(|| {
                MethodRegistry::standard()
                    .method(id)
                    .build_program(&self.world)
            })
            .as_ref()
    }

    /// The method's program, if already built.
    pub fn get(&self, id: MethodId) -> Result<&dyn MethodProgram, MethodUnavailable> {
        self.slots[id.ordinal() as usize]
            .get()
            .map(|p| p.as_ref())
            .ok_or(MethodUnavailable::NotBuilt(id.name()))
    }
}
