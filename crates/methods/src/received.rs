//! Shared client-side plumbing for whole-cycle methods that search the
//! *received* network with a `spair_roadnet` algorithm: receive the
//! data-only cycle into a [`ReceivedGraph`], then rebuild a dense
//! [`RoadNetwork`] the library searches run on, with an id mapping back
//! to the broadcast node ids.

use spair_baselines::dj::receive_whole_cycle;
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, MemoryMeter};
use spair_core::netcodec::ReceivedGraph;
use spair_core::query::QueryError;
use spair_roadnet::{NodeId, Point, RoadNetwork, Weight};

/// The rebuilt search graph of one session.
pub(crate) struct ReceivedNetwork {
    /// Dense rebuild of the received adjacency data.
    pub g: RoadNetwork,
    /// Dense id -> broadcast id, sorted ascending (so the reverse lookup
    /// is a binary search — see [`ReceivedNetwork::dense`]).
    pub to_orig: Vec<NodeId>,
}

/// Receives one whole cycle of data packets (with §6.2 re-reception of
/// lost offsets) and rebuilds the network, charging the memory meter the
/// same decoded-node costs the DJ client pays plus the dense rebuild.
///
/// `store` is caller-owned scratch (cleared here), so clients serving
/// many sessions reuse its arenas instead of re-allocating per query.
pub(crate) fn receive_network(
    ch: &mut BroadcastChannel<'_>,
    mem: &mut MemoryMeter,
    store: &mut ReceivedGraph,
) -> Result<ReceivedNetwork, QueryError> {
    store.clear();
    receive_whole_cycle(ch, mem, |kind, payload, mem| {
        if kind == PacketKind::Data {
            if let Some(charged) = store.ingest_payload(payload) {
                mem.alloc(charged);
            }
        }
    })?;

    let mut to_orig: Vec<NodeId> = store.node_ids().collect();
    to_orig.sort_unstable();
    // Direct CSR assembly in dense-id order: per-source edge order is the
    // store's ingest order, exactly what the former GraphBuilder rebuild
    // produced.
    let dense_of =
        |v: NodeId| -> Option<NodeId> { to_orig.binary_search(&v).ok().map(|i| i as NodeId) };
    let mut points: Vec<Point> = Vec::with_capacity(to_orig.len());
    let mut out_offsets: Vec<u32> = Vec::with_capacity(to_orig.len() + 1);
    let mut out_targets: Vec<NodeId> = Vec::new();
    let mut out_weights: Vec<Weight> = Vec::new();
    out_offsets.push(0);
    for &v in &to_orig {
        points.push(store.point(v).expect("listed node"));
        for &(u, w) in store.out_edges(v) {
            // A target absent from the store can only mean a server-side
            // encoding bug; dropping the edge keeps the client total.
            if let Some(du) = dense_of(u) {
                out_targets.push(du);
                out_weights.push(w);
            }
        }
        out_offsets.push(out_targets.len() as u32);
    }
    let edges = out_targets.len();
    // The dense rebuild doubles the adjacency (id map + CSR arrays).
    mem.alloc(to_orig.len() * 24 + edges * 8);
    Ok(ReceivedNetwork {
        g: RoadNetwork::from_csr(points, out_offsets, out_targets, out_weights),
        to_orig,
    })
}

impl ReceivedNetwork {
    /// Maps a broadcast node id to its dense id, if received.
    pub fn dense(&self, v: NodeId) -> Option<NodeId> {
        self.to_orig.binary_search(&v).ok().map(|i| i as NodeId)
    }

    /// Maps a dense path back to broadcast node ids.
    pub fn path_to_orig(&self, path: &[NodeId]) -> Vec<NodeId> {
        path.iter().map(|&v| self.to_orig[v as usize]).collect()
    }
}
