//! Shared client-side plumbing for whole-cycle methods that search the
//! *received* network with a `spair_roadnet` algorithm: receive the
//! data-only cycle into a [`ReceivedGraph`], then rebuild a dense
//! [`RoadNetwork`] the library searches run on, with an id mapping back
//! to the broadcast node ids.

use spair_baselines::dj::receive_whole_cycle;
use spair_broadcast::packet::PacketKind;
use spair_broadcast::{BroadcastChannel, MemoryMeter};
use spair_core::netcodec::{decode_payload, ReceivedGraph};
use spair_core::query::QueryError;
use spair_roadnet::{GraphBuilder, NodeId, RoadNetwork};
use std::collections::HashMap;

/// The rebuilt search graph of one session.
pub(crate) struct ReceivedNetwork {
    /// Dense rebuild of the received adjacency data.
    pub g: RoadNetwork,
    /// Dense id -> broadcast id.
    pub to_orig: Vec<NodeId>,
    /// Broadcast id -> dense id.
    pub to_dense: HashMap<NodeId, NodeId>,
}

/// Receives one whole cycle of data packets (with §6.2 re-reception of
/// lost offsets) and rebuilds the network, charging the memory meter the
/// same decoded-node costs the DJ client pays plus the dense rebuild.
pub(crate) fn receive_network(
    ch: &mut BroadcastChannel<'_>,
    mem: &mut MemoryMeter,
) -> Result<ReceivedNetwork, QueryError> {
    let mut store = ReceivedGraph::new();
    receive_whole_cycle(ch, mem, |kind, payload, mem| {
        if kind == PacketKind::Data {
            if let Some(records) = decode_payload(payload) {
                for rec in records {
                    mem.alloc(store.ingest(rec));
                }
            }
        }
    })?;

    let mut to_orig: Vec<NodeId> = store.node_ids().collect();
    to_orig.sort_unstable();
    let to_dense: HashMap<NodeId, NodeId> = to_orig
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as NodeId))
        .collect();
    let mut b = GraphBuilder::new();
    for &v in &to_orig {
        b.add_node(store.point(v).expect("listed node"));
    }
    let mut edges = 0usize;
    for &v in &to_orig {
        for &(u, w) in store.out_edges(v) {
            // A target absent from the store can only mean a server-side
            // encoding bug; dropping the edge keeps the client total.
            if let Some(&du) = to_dense.get(&u) {
                b.add_edge(to_dense[&v], du, w);
                edges += 1;
            }
        }
    }
    // The dense rebuild doubles the adjacency (id map + CSR arrays).
    mem.alloc(to_orig.len() * 24 + edges * 8);
    Ok(ReceivedNetwork {
        g: b.finish(),
        to_orig,
        to_dense,
    })
}

impl ReceivedNetwork {
    /// Maps a dense path back to broadcast node ids.
    pub fn path_to_orig(&self, path: &[NodeId]) -> Vec<NodeId> {
        path.iter().map(|&v| self.to_orig[v as usize]).collect()
    }
}
