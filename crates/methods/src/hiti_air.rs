//! The HiTi hierarchy baseline on air behind the [`BroadcastMethod`]
//! trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::{HiTiAirClient, HiTiAirServer, HiTiIndex, HiTiProgram};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_roadnet::QueuePolicy;

/// HiTi's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "hiti_air",
    label: "HiTi",
    ordinal: 6,
    shape: Some(SessionShape::Anchored),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: false,
    reference_cycle: None,
};

/// The HiTi method.
pub struct HiTiAir;

/// HiTi's built program.
pub struct HiTiMethodProgram {
    program: HiTiProgram,
    precompute_secs: f64,
}

impl HiTiMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &HiTiProgram {
        &self.program
    }
}

impl MethodProgram for HiTiMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(HiTiAirClient::new()))
    }

    fn precompute_secs(&self) -> f64 {
        self.precompute_secs
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for HiTiAir {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        let index = HiTiIndex::build(&world.g, world.tuning.hiti_side, world.tuning.hiti_levels);
        Box::new(HiTiMethodProgram {
            precompute_secs: index.precompute_secs,
            // A world exceeding a wire field of the index format is a
            // configuration error; surface the typed encode error loudly
            // rather than broadcasting a truncated index.
            program: HiTiAirServer::new(&world.g, &index)
                .build_program()
                .unwrap_or_else(|e| panic!("hiti_air: {e}")),
        })
    }

    fn make_remote_client(
        &self,
        _bootstrap: &ClientBootstrap,
        _queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(HiTiAirClient::new()))
    }
}
