//! Bidirectional Dijkstra on air.
//!
//! Same broadcast program as DJ — the raw network data — but the client
//! runs `spair_roadnet::bidirectional_search_paths` over the received
//! network: two simultaneous frontiers, forward from the source and
//! backward over in-edges from the target, meeting in the middle. On
//! road networks this settles roughly half the nodes of a
//! unidirectional run, so — like [`crate::astar_air`] — tuning time and
//! latency stay DJ's while client CPU drops. The library search was
//! previously reachable only from server-side precomputation; the
//! registry makes it a first-class on-air method.

use crate::received::receive_network;
use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::{DjProgram, DjServer};
use spair_broadcast::{BroadcastChannel, BroadcastCycle, CpuMeter, MemoryMeter, QueryStats};
use spair_core::netcodec::ReceivedGraph;
use spair_core::patch::{ClientArena, Coverage};
use spair_core::query::{AirClient, Query, QueryError, QueryOutcome};
use spair_roadnet::{bidirectional_search_paths, QueuePolicy};

/// The bidirectional-on-air descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "bidi_air",
    label: "BiDijkstra",
    ordinal: 10,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: true,
    reference_cycle: None,
};

/// The bidirectional-on-air method.
pub struct BidiAir;

/// Bidi's built program (DJ's data-only cycle).
pub struct BidiMethodProgram {
    program: DjProgram,
}

impl MethodProgram for BidiMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(BidiAirClient::default()))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for BidiAir {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        Box::new(BidiMethodProgram {
            program: DjServer::new(&world.g).build_program(),
        })
    }

    fn make_remote_client(
        &self,
        _bootstrap: &ClientBootstrap,
        _queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(BidiAirClient::default()))
    }
}

/// The bidirectional-on-air client.
#[derive(Default)]
struct BidiAirClient {
    /// Reusable receive/search arenas (cleared per session).
    store: ReceivedGraph,
}

impl AirClient for BidiAirClient {
    fn method_name(&self) -> &'static str {
        "BiDijkstra-air"
    }

    fn query(
        &mut self,
        ch: &mut BroadcastChannel<'_>,
        q: &Query,
    ) -> Result<QueryOutcome, QueryError> {
        let mut mem = MemoryMeter::new();
        let mut cpu = CpuMeter::new();
        if q.source == q.target {
            return Ok(QueryOutcome {
                distance: 0,
                path: vec![q.source],
                stats: QueryStats::default(),
            });
        }
        let net = receive_network(ch, &mut mem, &mut self.store)?;
        let (Some(s), Some(t)) = (net.dense(q.source), net.dense(q.target)) else {
            return Err(QueryError::Unreachable);
        };
        let (res, stats) = cpu.time(|| bidirectional_search_paths(&net.g, s, t));
        let stats_out = QueryStats {
            tuning_packets: ch.tuned(),
            latency_packets: ch.elapsed(),
            sleep_packets: ch.slept(),
            peak_memory_bytes: mem.peak(),
            cpu: cpu.total(),
            settled_nodes: stats.settled as u64,
        };
        match res {
            Some((distance, path)) => Ok(QueryOutcome {
                distance,
                path: net.path_to_orig(&path),
                stats: stats_out,
            }),
            None => Err(QueryError::Unreachable),
        }
    }

    fn export_arena(&mut self) -> Option<ClientArena> {
        Some(ClientArena {
            store: std::mem::take(&mut self.store),
            coverage: Coverage::Whole,
        })
    }
}
