//! Elliptic Boundary (§4) behind the [`BroadcastMethod`] trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_core::{EbClient, EbProgram, EbServer, EbSummary};
use spair_roadnet::QueuePolicy;

/// EB's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "eb",
    label: "EB",
    ordinal: 1,
    shape: Some(SessionShape::Anchored),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: true,
    reference_cycle: None,
};

/// The EB method.
pub struct Eb;

/// EB's built program.
pub struct EbMethodProgram {
    program: EbProgram,
}

impl EbMethodProgram {
    /// The inner server program (exposes `index_packets`/`replication`
    /// for the bench harness's replication ablation).
    pub fn program(&self) -> &EbProgram {
        &self.program
    }
}

impl MethodProgram for EbMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(
            EbClient::new(self.program.summary()).with_queue_policy(queue),
        ))
    }

    fn client_bootstrap(&self) -> ClientBootstrap {
        ClientBootstrap {
            num_regions: self.program.summary().num_regions,
            bbox: None,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for Eb {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        Box::new(EbMethodProgram {
            // A world exceeding a wire field of the index format is a
            // configuration error; surface the typed encode error loudly
            // rather than broadcasting a truncated index.
            program: EbServer::new(&world.g, &world.part, &world.pre)
                .build_program()
                .unwrap_or_else(|e| panic!("eb: {e}")),
        })
    }

    fn make_remote_client(
        &self,
        bootstrap: &ClientBootstrap,
        queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(
            EbClient::new(EbSummary {
                num_regions: bootstrap.num_regions,
            })
            .with_queue_policy(queue),
        ))
    }
}
