//! ArcFlag (§2.1, §3.2) behind the [`BroadcastMethod`] trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::arcflag::ArcFlagIndex;
use spair_baselines::{ArcFlagClient, ArcFlagProgram, ArcFlagServer};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_partition::{KdTreePartition, Partitioning};
use spair_roadnet::QueuePolicy;

/// AF's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "af",
    label: "ArcFlag",
    ordinal: 4,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: false,
    reference_cycle: None,
};

/// The ArcFlag method.
pub struct ArcFlag;

/// AF's built program.
pub struct ArcFlagMethodProgram {
    program: ArcFlagProgram,
    num_regions: usize,
    precompute_secs: f64,
}

impl ArcFlagMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &ArcFlagProgram {
        &self.program
    }
}

impl MethodProgram for ArcFlagMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(ArcFlagClient::new(self.num_regions)))
    }

    fn client_bootstrap(&self) -> ClientBootstrap {
        ClientBootstrap {
            num_regions: self.num_regions,
            bbox: None,
        }
    }

    fn precompute_secs(&self) -> f64 {
        self.precompute_secs
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for ArcFlag {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        // The scenario engine reuses the world's partition; the bench
        // harness fine-tunes AF its own region count (paper: 16).
        // A world exceeding a wire field of the index format is a
        // configuration error; surface the typed encode error loudly
        // rather than broadcasting a truncated index.
        let (index, num_regions, program) = match world.tuning.af_regions {
            None => {
                let index = ArcFlagIndex::build(&world.g, &world.part);
                let program = ArcFlagServer::new(&world.g, &world.part, &index)
                    .build_program()
                    .unwrap_or_else(|e| panic!("arcflag: {e}"));
                (index, world.part.num_regions(), program)
            }
            Some(regions) => {
                let part = KdTreePartition::build(&world.g, regions);
                let index = ArcFlagIndex::build(&world.g, &part);
                let program = ArcFlagServer::new(&world.g, &part, &index)
                    .build_program()
                    .unwrap_or_else(|e| panic!("arcflag: {e}"));
                (index, part.num_regions(), program)
            }
        };
        Box::new(ArcFlagMethodProgram {
            precompute_secs: index.precompute_secs,
            num_regions,
            program,
        })
    }

    fn make_remote_client(
        &self,
        bootstrap: &ClientBootstrap,
        _queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        if bootstrap.num_regions == 0 {
            return Err(MethodUnavailable::BadBootstrap(DESCRIPTOR.name));
        }
        Ok(Box::new(ArcFlagClient::new(bootstrap.num_regions)))
    }
}
