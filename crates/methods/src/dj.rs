//! Dijkstra on air (§3.2) behind the [`BroadcastMethod`] trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::{DjClient, DjProgram, DjServer};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_roadnet::QueuePolicy;

/// DJ's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "dj",
    label: "Dijkstra",
    ordinal: 2,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: true,
    reference_cycle: None,
};

/// The DJ method.
pub struct Dj;

/// DJ's built program.
pub struct DjMethodProgram {
    program: DjProgram,
}

impl DjMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &DjProgram {
        &self.program
    }
}

impl MethodProgram for DjMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(DjClient::new().with_queue_policy(queue)))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for Dj {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        Box::new(DjMethodProgram {
            program: DjServer::new(&world.g).build_program(),
        })
    }

    fn make_remote_client(
        &self,
        _bootstrap: &ClientBootstrap,
        queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(DjClient::new().with_queue_policy(queue)))
    }
}
