//! The SPQ shortest-path-quadtree baseline on air behind the
//! [`BroadcastMethod`] trait.

use crate::{
    BroadcastMethod, ClientBootstrap, MethodDescriptor, MethodProgram, MethodUnavailable,
    SessionShape, World,
};
use spair_baselines::{SpqAirServer, SpqClient, SpqIndex, SpqProgram};
use spair_broadcast::BroadcastCycle;
use spair_core::query::AirClient;
use spair_roadnet::QueuePolicy;

/// SPQ's descriptor.
pub const DESCRIPTOR: MethodDescriptor = MethodDescriptor {
    name: "spq_air",
    label: "SPQ",
    ordinal: 5,
    shape: Some(SessionShape::WholeCycle),
    air_client: true,
    knn: false,
    on_edge: true,
    own_channel: true,
    population_replayable: true,
    patches_incrementally: false,
    reference_cycle: None,
};

/// The SPQ method.
pub struct SpqAir;

/// SPQ's built program.
pub struct SpqMethodProgram {
    program: SpqProgram,
    precompute_secs: f64,
}

impl SpqMethodProgram {
    /// The inner server program.
    pub fn program(&self) -> &SpqProgram {
        &self.program
    }
}

impl MethodProgram for SpqMethodProgram {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn cycle(&self) -> Result<&BroadcastCycle, MethodUnavailable> {
        Ok(self.program.cycle())
    }

    fn make_client(&self, _queue: QueuePolicy) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        Ok(Box::new(SpqClient::new(self.program.bbox())))
    }

    fn client_bootstrap(&self) -> ClientBootstrap {
        ClientBootstrap {
            num_regions: 0,
            bbox: Some(self.program.bbox()),
        }
    }

    fn precompute_secs(&self) -> f64 {
        self.precompute_secs
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BroadcastMethod for SpqAir {
    fn descriptor(&self) -> &'static MethodDescriptor {
        &DESCRIPTOR
    }

    fn build_program(&self, world: &World) -> Box<dyn MethodProgram> {
        // One full Dijkstra per node: the template-driven parallel build
        // (bit-identical to serial) keeps paper-scale worlds tractable.
        let index = SpqIndex::build(&world.g);
        Box::new(SpqMethodProgram {
            precompute_secs: index.precompute_secs,
            // A world exceeding a wire field of the index format is a
            // configuration error; surface the typed encode error loudly
            // rather than broadcasting a truncated index.
            program: SpqAirServer::new(&world.g, &index)
                .build_program()
                .unwrap_or_else(|e| panic!("spq_air: {e}")),
        })
    }

    fn make_remote_client(
        &self,
        bootstrap: &ClientBootstrap,
        _queue: QueuePolicy,
    ) -> Result<Box<dyn AirClient>, MethodUnavailable> {
        let bbox = bootstrap
            .bbox
            .ok_or(MethodUnavailable::BadBootstrap(DESCRIPTOR.name))?;
        Ok(Box::new(SpqClient::new(bbox)))
    }
}
