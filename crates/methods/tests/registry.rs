//! Registry completeness and trait-contract tests:
//!
//! 1. all methods are registered with unique, **frozen** (name, ordinal)
//!    pairs — ordinals feed session-seed derivation, so a reordering
//!    would silently change every digest;
//! 2. descriptor capabilities are internally consistent and the built
//!    programs honor them (air methods hand out clients and cycles,
//!    channel-less / non-air facets return typed `MethodUnavailable`
//!    errors, never panics);
//! 3. the two registry-proving methods (`astar_air`, `bidi_air`) answer
//!    exactly against the serial Dijkstra oracle over a real broadcast
//!    channel, lossless and lossy.

use spair_broadcast::{BroadcastChannel, LossModel};
use spair_core::query::Query;
use spair_core::BorderPrecomputation;
use spair_methods::{MethodId, MethodRegistry, MethodUnavailable, World};
use spair_partition::KdTreePartition;
use spair_roadnet::generators::small_grid;
use spair_roadnet::{dijkstra_distance, NodeId, QueuePolicy};

/// The frozen registry: stable names and ordinals. Appending is fine;
/// renaming or reordering is a digest-breaking change this test blocks.
const FROZEN: [(&str, u32); 11] = [
    ("nr", 0),
    ("eb", 1),
    ("dj", 2),
    ("ld", 3),
    ("af", 4),
    ("spq_air", 5),
    ("hiti_air", 6),
    ("nr_mem_bound", 7),
    ("knn_air", 8),
    ("astar_air", 9),
    ("bidi_air", 10),
];

#[test]
fn registry_is_complete_with_frozen_names_and_ordinals() {
    let reg = MethodRegistry::standard();
    let all = reg.all();
    assert_eq!(all.len(), FROZEN.len(), "method count changed");
    for (m, (name, ordinal)) in all.iter().zip(FROZEN) {
        assert_eq!(m.name(), name);
        assert_eq!(m.ordinal(), ordinal);
        assert_eq!(reg.get(name).unwrap(), *m, "name lookup round-trips");
    }
    let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), all.len(), "names must be unique");
    let mut labels: Vec<&str> = all.iter().map(|m| m.label()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), all.len(), "chart labels must be unique");
}

#[test]
fn legacy_constants_match_registry_lookups() {
    let reg = MethodRegistry::standard();
    for (handle, name) in [
        (MethodId::NR, "nr"),
        (MethodId::EB, "eb"),
        (MethodId::DJ, "dj"),
        (MethodId::LD, "ld"),
        (MethodId::AF, "af"),
        (MethodId::SPQ_AIR, "spq_air"),
        (MethodId::HITI_AIR, "hiti_air"),
        (MethodId::NR_MEM_BOUND, "nr_mem_bound"),
        (MethodId::KNN_AIR, "knn_air"),
    ] {
        assert_eq!(reg.get(name).unwrap(), handle);
        assert_eq!(handle.name(), name);
    }
    assert!(matches!(
        reg.get("nope"),
        Err(MethodUnavailable::Unknown(_))
    ));
}

#[test]
fn descriptor_capabilities_are_internally_consistent() {
    for m in MethodRegistry::standard().all() {
        let d = m.descriptor();
        assert_eq!(
            d.air_client,
            d.shape.is_some(),
            "{}: air clients and only air clients declare a session shape",
            d.name
        );
        if d.air_client {
            assert!(d.own_channel, "{}: an air client needs a cycle", d.name);
            assert!(
                d.on_edge,
                "{}: air clients run the §5 decomposition",
                d.name
            );
        }
        assert_eq!(
            d.population_replayable, d.air_client,
            "{}: lossless replay is exactly the air-client set",
            d.name
        );
        assert!(
            !(d.knn && d.air_client),
            "{}: knn is a separate facet",
            d.name
        );
        assert_eq!(
            d.reference_cycle.is_some(),
            !d.own_channel,
            "{}: channel-less methods (and only they) quote a reference cycle",
            d.name
        );
        assert_eq!(d.runs_paths(), !d.knn, "{}", d.name);
    }
}

fn tiny_world() -> World {
    let g = small_grid(8, 8, 5);
    let part = KdTreePartition::build(&g, 8);
    let pre = BorderPrecomputation::run(&g, &part);
    let pois: Vec<NodeId> = vec![3, 17, 22, 40, 61];
    World::from_parts(g, part, pre).with_pois(pois)
}

#[test]
fn built_programs_honor_their_capability_flags() {
    let world = tiny_world();
    let reg = MethodRegistry::standard();
    for m in reg.all() {
        let d = m.descriptor();
        let program = reg.method(m).build_program(&world);
        assert_eq!(program.descriptor().name, d.name);
        match program.cycle() {
            Ok(cycle) => {
                assert!(d.own_channel, "{}: cycle despite own_channel=false", d.name);
                assert!(!cycle.is_empty());
            }
            Err(MethodUnavailable::NoOwnChannel { method, reference }) => {
                assert!(!d.own_channel, "{}: typed error on a real cycle", d.name);
                assert_eq!(method, d.name);
                // The harnesses resolve the reference cycle for reports
                // (sim's `reported_cycle_packets` test covers that).
                assert_eq!(Some(reference), d.reference_cycle);
            }
            Err(e) => panic!("{}: unexpected error {e}", d.name),
        }
        match program.make_client(QueuePolicy::Auto) {
            Ok(_) => assert!(d.air_client, "{}: client despite air_client=false", d.name),
            Err(MethodUnavailable::NotAirClient(name)) => {
                assert!(!d.air_client, "{}: typed error on a real client", d.name);
                assert_eq!(name, d.name);
            }
            Err(e) => panic!("{}: unexpected error {e}", d.name),
        }
        match program.make_knn_client() {
            Ok(_) => assert!(d.knn, "{}: knn client despite knn=false", d.name),
            Err(MethodUnavailable::NotKnn(name)) => {
                assert!(!d.knn);
                assert_eq!(name, d.name);
            }
            Err(e) => panic!("{}: unexpected error {e}", d.name),
        }
    }
}

#[test]
fn mem_bound_local_answer_is_exact_and_air_methods_have_none() {
    let world = tiny_world();
    let reg = MethodRegistry::standard();
    let g = world.g.clone();
    let q = Query::for_nodes(&g, 0, 63);
    let oracle = dijkstra_distance(&g, 0, 63).unwrap();
    for m in reg.all() {
        let program = reg.method(m).build_program(&world);
        match program.local_answer(&q, QueuePolicy::Auto) {
            Some(res) => {
                assert_eq!(m.name(), "nr_mem_bound");
                assert_eq!(res.unwrap().distance, oracle);
            }
            None => assert_ne!(m.name(), "nr_mem_bound"),
        }
    }
}

/// The registry-proving methods: exact against the oracle over a real
/// channel, from arbitrary offsets, lossless and lossy.
#[test]
fn astar_and_bidi_air_answer_exactly_over_the_channel() {
    let world = tiny_world();
    let reg = MethodRegistry::standard();
    let g = world.g.clone();
    for name in ["astar_air", "bidi_air"] {
        let m = reg.get(name).unwrap();
        let program = reg.method(m).build_program(&world);
        let cycle = program.cycle().unwrap();
        let mut client = program.make_client(QueuePolicy::Auto).unwrap();
        for (i, &(s, t)) in [(0u32, 63u32), (7, 56), (12, 50), (63, 0), (5, 5)]
            .iter()
            .enumerate()
        {
            let q = Query::for_nodes(&g, s, t);
            // Lossless from a spread of offsets.
            let mut ch =
                BroadcastChannel::tune_in(cycle, (i * 131) % cycle.len(), LossModel::Lossless);
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(
                Some(out.distance),
                dijkstra_distance(&g, s, t),
                "{name} {s}->{t}"
            );
            // Paths must be real walks of the claimed length.
            let mut acc = 0u64;
            for w in out.path.windows(2) {
                acc += g.weight_between(w[0], w[1]).expect("path edge") as u64;
            }
            assert_eq!(acc, out.distance, "{name} path sum");
            assert_eq!(out.path.first(), Some(&s));
            assert_eq!(out.path.last(), Some(&t));
            // Whole-cycle shape: lossless tuning is exactly one cycle.
            if s != t {
                assert_eq!(out.stats.tuning_packets as usize, cycle.len(), "{name}");
            }
            // Lossy: still exact, more tuning.
            let mut ch =
                BroadcastChannel::tune_in(cycle, 3, LossModel::bernoulli(0.08, 42 + i as u64));
            let out = client.query(&mut ch, &q).unwrap();
            assert_eq!(
                Some(out.distance),
                dijkstra_distance(&g, s, t),
                "{name} lossy {s}->{t}"
            );
        }
    }
}

/// Goal-direction sanity: on a geometric grid, A*'s measured bound must
/// not settle more nodes than bidirectional's plain Dijkstra frontier
/// settles in total... both must settle no more than DJ would (the whole
/// node count), and A* strictly fewer than the full graph on a long
/// query.
#[test]
fn new_methods_do_less_work_than_a_full_sweep() {
    let world = tiny_world();
    let reg = MethodRegistry::standard();
    let g = world.g.clone();
    let q = Query::for_nodes(&g, 0, 63);
    for name in ["astar_air", "bidi_air"] {
        let m = reg.get(name).unwrap();
        let program = reg.method(m).build_program(&world);
        let cycle = program.cycle().unwrap();
        let mut client = program.make_client(QueuePolicy::Auto).unwrap();
        let mut ch = BroadcastChannel::tune_in(cycle, 0, LossModel::Lossless);
        let out = client.query(&mut ch, &q).unwrap();
        assert!(
            out.stats.settled_nodes <= g.num_nodes() as u64,
            "{name}: settled {} of {}",
            out.stats.settled_nodes,
            g.num_nodes()
        );
        assert!(out.stats.settled_nodes > 0, "{name}");
    }
}
