//! Regression tests for `astar_air`'s measured geometric bound.
//!
//! The original bound measured `c = min (w - 1) / |e|`, which collapses
//! to `c = 0` — plain Dijkstra — the moment any received edge has
//! weight 1. The current `w / |e|` numerator with the `ceil(..) - 1`
//! bound keeps pruning on such networks. These tests pin the repaired
//! behavior on exactly the inputs that broke it:
//!
//! 1. a unit-weight lattice (every edge weight 1 — the fully degenerate
//!    case for the old bound) must settle strictly fewer nodes under A*
//!    than plain Dijkstra, and answer exactly;
//! 2. on the conformance suite's grid-class networks, A* must settle
//!    strictly fewer nodes than both `dj` and `bidi_air` aggregated over
//!    a query batch, while staying exact.

use spair_broadcast::BroadcastChannel;
use spair_core::query::Query;
use spair_core::BorderPrecomputation;
use spair_methods::{MethodRegistry, World};
use spair_partition::KdTreePartition;
use spair_roadnet::generators::small_grid;
use spair_roadnet::{dijkstra_distance, GraphBuilder, Point, RoadNetwork};

/// An n x n lattice at unit spacing where every edge has weight 1 — the
/// old `(w - 1) / |e|` bound measures `c = 0` here and degenerates to
/// plain Dijkstra.
fn unit_lattice(n: u32) -> RoadNetwork {
    let mut b = GraphBuilder::new();
    for y in 0..n {
        for x in 0..n {
            b.add_node(Point::new(x as f64, y as f64));
        }
    }
    let id = |x: u32, y: u32| y * n + x;
    for y in 0..n {
        for x in 0..n {
            if x + 1 < n {
                b.add_edge(id(x, y), id(x + 1, y), 1);
                b.add_edge(id(x + 1, y), id(x, y), 1);
            }
            if y + 1 < n {
                b.add_edge(id(x, y), id(x, y + 1), 1);
                b.add_edge(id(x, y + 1), id(x, y), 1);
            }
        }
    }
    b.finish()
}

/// Runs `method` over a lossless channel for each query and returns the
/// total settled nodes, asserting every distance against the oracle.
fn settled_total(g: &RoadNetwork, method: &str, queries: &[(u32, u32)]) -> u64 {
    let reg = MethodRegistry::standard();
    let part = KdTreePartition::build(g, 8);
    let pre = BorderPrecomputation::run(g, &part);
    let world = World::from_parts(g.clone(), part, pre);
    let m = reg.get(method).unwrap();
    let program = reg.method(m).build_program(&world);
    let cycle = program.cycle().unwrap();
    let mut client = program.make_client(Default::default()).unwrap();
    let mut settled = 0;
    for &(s, t) in queries {
        let mut ch = BroadcastChannel::lossless(cycle);
        let out = client.query(&mut ch, &Query::for_nodes(g, s, t)).unwrap();
        assert_eq!(
            Some(out.distance),
            dijkstra_distance(g, s, t),
            "{method}: wrong distance for {s} -> {t}"
        );
        settled += out.stats.settled_nodes;
    }
    settled
}

#[test]
fn unit_weight_lattice_still_prunes() {
    let g = unit_lattice(14);
    let n = 14 * 14;
    let queries: Vec<(u32, u32)> = vec![(0, n - 1), (13, n - 14), (5, 160), (100, 7)];
    let astar = settled_total(&g, "astar_air", &queries);
    let dj = settled_total(&g, "dj", &queries);
    assert!(
        astar < dj,
        "A* must keep pruning on all-weight-1 edges: astar {astar} vs dj {dj}"
    );
}

#[test]
fn grid_networks_settle_strictly_below_dj_and_bidi() {
    for (w, h, seed) in [(12usize, 12usize, 3u64), (14, 14, 7), (16, 16, 11)] {
        let g = small_grid(w, h, seed);
        let n = g.num_nodes() as u32;
        let queries: Vec<(u32, u32)> = (0..6u32)
            .map(|i| ((i * 7919) % n, (i * 104_729 + n / 2) % n))
            .filter(|(s, t)| s != t)
            .collect();
        let astar = settled_total(&g, "astar_air", &queries);
        let bidi = settled_total(&g, "bidi_air", &queries);
        let dj = settled_total(&g, "dj", &queries);
        assert!(
            astar < dj,
            "grid {w}x{h} seed {seed}: astar {astar} >= dj {dj}"
        );
        assert!(
            astar < bidi,
            "grid {w}x{h} seed {seed}: astar {astar} >= bidi {bidi}"
        );
    }
}
