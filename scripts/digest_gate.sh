#!/usr/bin/env bash
# Shared digest gate for the CI workflows.
#
# Runs one bench binary and verifies the digest of the artifact it wrote,
# either against a pinned 16-hex literal or against the digest of a
# committed artifact. Every digest in this repo is a pure function of the
# committed specs and seeds, so a drift without a matching spec change is
# a determinism regression — the gates' whole job is to make that loud.
#
#   scripts/digest_gate.sh --package spair-sim --bin bench_scenarios \
#       --out /tmp/full.json --expect BENCH_scenarios.json
#   scripts/digest_gate.sh --package spair-sim --bin bench_scenarios \
#       --out /tmp/legacy9.json --expect 8a6f7c37dd620807 \
#       --methods nr,eb,dj,ld,af,spq_air,hiti_air,nr_mem_bound,knn_air
#   scripts/digest_gate.sh --package spair-sim --bin bench_faults \
#       --out /tmp/faults_t4.json --expect 45e913420811fb2d -- --smoke --threads 4
#
# Flags after `--` pass through to the binary unchanged (e.g. --smoke,
# --threads N). The thread-stability pattern is two invocations with the
# same pinned digest and different --threads.
set -euo pipefail

package="" bin="" out="" expect="" methods=""
passthrough=()
while [ $# -gt 0 ]; do
  case "$1" in
    --package) package="$2"; shift 2 ;;
    --bin) bin="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    --expect) expect="$2"; shift 2 ;;
    --methods) methods="$2"; shift 2 ;;
    --) shift; passthrough=("$@"); break ;;
    *) echo "digest_gate: unknown flag $1" >&2; exit 2 ;;
  esac
done
if [ -z "$package" ] || [ -z "$bin" ] || [ -z "$out" ] || [ -z "$expect" ]; then
  echo "digest_gate: --package, --bin, --out and --expect are required" >&2
  exit 2
fi

cmd=(cargo run --release -p "$package" --bin "$bin" -- --out "$out")
if [ -n "$methods" ]; then
  cmd+=(--methods "$methods")
fi
if [ ${#passthrough[@]} -gt 0 ]; then
  cmd+=("${passthrough[@]}")
fi
"${cmd[@]}"

digest_of() {
  grep -o '"digest": "[0-9a-f]*"' "$1" | head -n1 | grep -o '[0-9a-f]\{16\}'
}

fresh=$(digest_of "$out")
if [ -f "$expect" ]; then
  want=$(digest_of "$expect")
  echo "digest_gate: $out -> $fresh / committed $expect -> $want"
else
  want="$expect"
  echo "digest_gate: $out -> $fresh / pinned $want"
fi
test "$fresh" = "$want"
