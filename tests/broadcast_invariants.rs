//! Property tests on the broadcast substrate itself: channel clock
//! arithmetic, pointer stamping, and the loss model — the invariants every
//! client implicitly depends on.

use bytes::Bytes;
use proptest::prelude::*;
use spair::broadcast::cycle::{CycleBuilder, SegmentKind};
use spair::broadcast::packet::PacketKind;
use spair::prelude::*;

fn build_cycle(seg_lens: &[usize], index_every: usize) -> spair::broadcast::BroadcastCycle {
    let mut b = CycleBuilder::new();
    for (i, &len) in seg_lens.iter().enumerate() {
        if i % index_every == 0 {
            b.push_segment(
                SegmentKind::GlobalIndex,
                PacketKind::Index,
                vec![Bytes::from(vec![0xEEu8])],
            );
        }
        b.push_segment(
            SegmentKind::RegionData(i as u16),
            PacketKind::Data,
            (0..len)
                .map(|j| Bytes::from(vec![i as u8, j as u8]))
                .collect(),
        );
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every packet's next-index pointer lands exactly on an index packet,
    /// and no index packet exists strictly between the pointer's origin
    /// and its destination.
    #[test]
    fn pointers_always_hit_the_next_index(
        seg_lens in prop::collection::vec(0usize..7, 1..12),
        index_every in 1usize..4,
    ) {
        let cycle = build_cycle(&seg_lens, index_every);
        let n = cycle.len();
        for pos in 0..n {
            let ptr = cycle.packet(pos).next_index() as usize;
            prop_assert!(ptr < n, "pointer wraps at most once");
            let target = (pos + 1 + ptr) % n;
            prop_assert_eq!(cycle.packet(target).kind(), PacketKind::Index);
            for k in 0..ptr {
                let between = (pos + 1 + k) % n;
                prop_assert_ne!(cycle.packet(between).kind(), PacketKind::Index);
            }
        }
    }

    /// Channel clock: elapsed = tuned + slept always; offsets wrap
    /// modulo the cycle; sleep_to_offset never sleeps a full cycle.
    #[test]
    fn channel_clock_arithmetic(
        seg_lens in prop::collection::vec(1usize..6, 1..8),
        ops in prop::collection::vec((0u8..3, 0usize..40), 1..60),
        start in 0usize..1000,
    ) {
        let cycle = build_cycle(&seg_lens, 2);
        let mut ch = BroadcastChannel::tune_in(&cycle, start, LossModel::Lossless);
        for (op, arg) in ops {
            let before = ch.elapsed();
            match op {
                0 => {
                    ch.receive();
                    prop_assert_eq!(ch.elapsed(), before + 1);
                }
                1 => {
                    ch.sleep(arg as u64);
                    prop_assert_eq!(ch.elapsed(), before + arg as u64);
                }
                _ => {
                    let target = arg % cycle.len();
                    ch.sleep_to_offset(target);
                    prop_assert_eq!(ch.offset(), target);
                    prop_assert!(ch.elapsed() - before < cycle.len() as u64);
                }
            }
            prop_assert_eq!(ch.elapsed(), ch.tuned() + ch.slept());
            prop_assert!(ch.offset() < cycle.len());
        }
    }

    /// The Bernoulli loss model is deterministic per seed and the
    /// empirical rate converges to the configured one.
    #[test]
    fn loss_model_rate_and_determinism(rate in 0.0f64..0.5, seed in 0u64..50) {
        let cycle = build_cycle(&[3, 3], 1);
        let sample = |seed| {
            let mut ch = BroadcastChannel::tune_in(&cycle, 0, LossModel::bernoulli(rate, seed));
            (0..4000)
                .map(|_| ch.receive().ok().is_none())
                .collect::<Vec<bool>>()
        };
        let a = sample(seed);
        prop_assert_eq!(&a, &sample(seed), "same seed, same losses");
        let observed = a.iter().filter(|&&l| l).count() as f64 / a.len() as f64;
        prop_assert!((observed - rate).abs() < 0.05, "rate {rate} observed {observed}");
    }

    /// The 4-ary heap agrees with the standard library's binary heap on
    /// arbitrary push/pop interleavings.
    #[test]
    fn min_heap_matches_std(ops in prop::collection::vec((any::<bool>(), 0u64..10_000), 1..300)) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ours = spair::roadnet::MinHeap::new();
        let mut std_heap = BinaryHeap::new();
        for (push, key) in ops {
            if push || std_heap.is_empty() {
                ours.push(key, ());
                std_heap.push(Reverse(key));
            } else {
                prop_assert_eq!(ours.pop().map(|e| e.key), std_heap.pop().map(|r| r.0));
            }
            prop_assert_eq!(ours.peek_key(), std_heap.peek().map(|r| r.0));
            prop_assert_eq!(ours.len(), std_heap.len());
        }
    }

    /// Bidirectional Dijkstra equals unidirectional on arbitrary networks
    /// and query pairs.
    #[test]
    fn bidirectional_always_matches(
        nodes in 20usize..120,
        seed in 0u64..200,
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let g = spair::roadnet::generators::GeneratorConfig {
            nodes,
            undirected_edges: nodes + nodes / 3,
            seed,
            ..Default::default()
        }
        .generate();
        let s = (pair.0 % nodes) as u32;
        let t = (pair.1 % nodes) as u32;
        prop_assert_eq!(
            spair::roadnet::bidirectional_distance(&g, s, t),
            spair::roadnet::dijkstra_distance(&g, s, t)
        );
    }
}
