//! Integration tests for the framework extensions: HiTi and SPQ full
//! on-air clients, on-edge queries driven through real air clients, and
//! on-air kNN — all validated against exhaustive references.

use proptest::prelude::*;
use spair::prelude::*;
use spair::roadnet::generators::GeneratorConfig;
use spair::roadnet::{
    dijkstra_distance, dijkstra_full, insert_positions, EdgePosition, NodeId, Weight,
};

fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (40usize..160, 0u64..500, 0.1f64..0.5).prop_map(|(nodes, seed, extra)| {
        GeneratorConfig {
            nodes,
            undirected_edges: nodes - 1 + (nodes as f64 * extra) as usize,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    })
}

/// First splittable undirected segment scanning from node `from`.
fn splittable_arc(g: &RoadNetwork, from: NodeId) -> Option<(NodeId, NodeId, Weight)> {
    for v in (from..g.num_nodes() as NodeId).chain(0..from) {
        for (u, w) in g.out_edges(v) {
            if w >= 4 && g.weight_between(u, v) == Some(w) {
                return Some((v, u, w));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full HiTi on-air client equals whole-graph Dijkstra for
    /// arbitrary networks, grid sides, hierarchy depths and tune-ins.
    #[test]
    fn hiti_air_always_matches_dijkstra(
        g in arb_network(),
        side_pow in 1u32..4,
        pair in (0usize..10_000, 0usize..10_000),
        offset in 0usize..10_000,
    ) {
        let side = 1usize << side_pow;
        let levels = (side_pow as usize + 1).min(3);
        let index = HiTiIndex::build(&g, side, levels);
        let program = HiTiAirServer::new(&g, &index).build_program().expect("encode");
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let mut ch = BroadcastChannel::tune_in(
            program.cycle(),
            offset % program.cycle().len(),
            LossModel::Lossless,
        );
        let out = HiTiAirClient::new().query(&mut ch, &Query::for_nodes(&g, s, t));
        prop_assert_eq!(out.ok().map(|o| o.distance), dijkstra_distance(&g, s, t));
    }

    /// The SPQ on-air client equals whole-graph Dijkstra on lossless
    /// channels (its quadtree walk is exact when every tree decodes).
    #[test]
    fn spq_air_always_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
        offset in 0usize..10_000,
    ) {
        let index = SpqIndex::build(&g);
        let program = SpqAirServer::new(&g, &index).build_program().expect("encode");
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let mut ch = BroadcastChannel::tune_in(
            program.cycle(),
            offset % program.cycle().len(),
            LossModel::Lossless,
        );
        let out = SpqClient::new(program.bbox()).query(&mut ch, &Query::for_nodes(&g, s, t));
        prop_assert_eq!(out.ok().map(|o| o.distance), dijkstra_distance(&g, s, t));
    }

    /// On-edge queries answered through the EB air client match the
    /// split-graph reference.
    #[test]
    fn on_edge_via_eb_matches_split_reference(
        g in arb_network(),
        picks in (0u32..10_000, 0u32..10_000),
        target in 0usize..10_000,
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let program = EbServer::new(&g, &part, &pre).build_program().expect("encode");
        let n = g.num_nodes() as NodeId;
        let Some((u, v, w)) = splittable_arc(&g, picks.0 % n) else {
            return Ok(());
        };
        let along = 1 + picks.1 % (w - 1);
        let src = OnEdgePoint::on_undirected(&g, u, v, along);
        let dst = OnEdgePoint::at_node(&g, (target % g.num_nodes()) as NodeId);
        let mut client = EbClient::new(program.summary());
        let got = on_edge_query(&src, &dst, |q| {
            let mut ch = BroadcastChannel::lossless(program.cycle());
            client.query(&mut ch, q)
        })
        .ok()
        .map(|o| o.distance);
        let (g2, ids) = insert_positions(&g, &[EdgePosition { from: u, to: v, along }]);
        prop_assert_eq!(got, dijkstra_distance(&g2, ids[0], dst.exits[0].0));
    }

    /// On-air kNN matches exhaustive Dijkstra over the POI set, for
    /// arbitrary POI densities and k.
    #[test]
    fn knn_air_matches_exhaustive(
        g in arb_network(),
        poi_seed in 0u64..1000,
        density in 2usize..12,
        k in 1usize..6,
        source in 0usize..10_000,
    ) {
        use rand::{Rng, SeedableRng};
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let mut rng = rand::rngs::StdRng::seed_from_u64(poi_seed);
        let mut pois: Vec<NodeId> = (0..g.num_nodes() / density)
            .map(|_| rng.gen_range(0..g.num_nodes()) as NodeId)
            .collect();
        pois.sort_unstable();
        pois.dedup();
        prop_assume!(!pois.is_empty());
        let program = KnnServer::new(&g, &part, &pre, &pois).build_program().expect("encode");
        let s = (source % g.num_nodes()) as NodeId;
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = KnnClient::new(8)
            .query(&mut ch, s, g.point(s), k)
            .expect("lossless channel");
        let tree = dijkstra_full(&g, s);
        let mut want: Vec<u64> = pois
            .iter()
            .filter(|&&p| tree.reachable(p))
            .map(|&p| tree.distance(p))
            .collect();
        want.sort_unstable();
        want.truncate(k);
        let got: Vec<u64> = out.neighbors.iter().map(|nb| nb.distance).collect();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn all_methods_exact_under_bursty_loss() {
    // Gilbert–Elliott bursts (mean length 8) at a 5 % stationary rate:
    // every method's §6.2 recovery must still deliver the exact answer.
    let g = spair::roadnet::generators::small_grid(10, 10, 6);
    let part = KdTreePartition::build(&g, 8);
    let pre = BorderPrecomputation::run(&g, &part);
    let want = dijkstra_distance(&g, 2, 97);
    let q = Query::for_nodes(&g, 2, 97);

    let nr = NrServer::new(&g, &part, &pre)
        .build_program()
        .expect("encode");
    let eb = EbServer::new(&g, &part, &pre)
        .build_program()
        .expect("encode");
    let dj = spair::baselines::DjServer::new(&g).build_program();
    let af_index = spair::baselines::arcflag::ArcFlagIndex::build(&g, &part);
    let af = spair::baselines::ArcFlagServer::new(&g, &part, &af_index)
        .build_program()
        .expect("encode");
    let ld_index = spair::baselines::landmark::LandmarkIndex::build(&g, 2);
    let ld = spair::baselines::LandmarkServer::new(&g, &ld_index).build_program();

    for seed in 0..4u64 {
        let loss = || LossModel::bursty(0.05, 8.0, seed);
        let mut runs: Vec<(&str, Result<spair::core::QueryOutcome, QueryError>)> = Vec::new();
        let mut ch = BroadcastChannel::tune_in(nr.cycle(), 7, loss());
        runs.push(("NR", NrClient::new(nr.summary()).query(&mut ch, &q)));
        let mut ch = BroadcastChannel::tune_in(eb.cycle(), 7, loss());
        runs.push(("EB", EbClient::new(eb.summary()).query(&mut ch, &q)));
        let mut ch = BroadcastChannel::tune_in(dj.cycle(), 7, loss());
        runs.push(("DJ", DjClient::new().query(&mut ch, &q)));
        let mut ch = BroadcastChannel::tune_in(af.cycle(), 7, loss());
        runs.push(("AF", ArcFlagClient::new(8).query(&mut ch, &q)));
        let mut ch = BroadcastChannel::tune_in(ld.cycle(), 7, loss());
        runs.push(("LD", LandmarkClient::new().query(&mut ch, &q)));
        for (name, out) in runs {
            assert_eq!(out.unwrap().distance, want.unwrap(), "{name} seed {seed}");
        }
    }
}

#[test]
fn hiti_air_survives_heavy_loss() {
    let g = spair::roadnet::generators::small_grid(10, 10, 3);
    let index = HiTiIndex::build(&g, 4, 2);
    let program = HiTiAirServer::new(&g, &index)
        .build_program()
        .expect("encode");
    let mut client = HiTiAirClient::new();
    for seed in 0..6 {
        let mut ch = BroadcastChannel::tune_in(
            program.cycle(),
            17 * seed as usize,
            LossModel::bernoulli(0.10, seed),
        );
        let out = client.query(&mut ch, &Query::for_nodes(&g, 0, 99)).unwrap();
        assert_eq!(
            Some(out.distance),
            dijkstra_distance(&g, 0, 99),
            "seed {seed}"
        );
    }
}

#[test]
fn on_edge_same_segment_is_exact_for_all_methods() {
    let g = spair::roadnet::generators::small_grid(8, 8, 5);
    let part = KdTreePartition::build(&g, 8);
    let pre = BorderPrecomputation::run(&g, &part);
    let (u, v, w) = splittable_arc(&g, 0).unwrap();
    let src = OnEdgePoint::on_undirected(&g, u, v, 1);
    let dst = OnEdgePoint::on_undirected(&g, u, v, w - 1);
    let (g2, ids) = insert_positions(
        &g,
        &[
            EdgePosition {
                from: u,
                to: v,
                along: 1,
            },
            EdgePosition {
                from: u,
                to: v,
                along: w - 1,
            },
        ],
    );
    let want = dijkstra_distance(&g2, ids[0], ids[1]);

    let nr_program = NrServer::new(&g, &part, &pre)
        .build_program()
        .expect("encode");
    let mut nr = NrClient::new(nr_program.summary());
    let got_nr = on_edge_query(&src, &dst, |q| {
        let mut ch = BroadcastChannel::lossless(nr_program.cycle());
        nr.query(&mut ch, q)
    })
    .unwrap();
    assert_eq!(Some(got_nr.distance), want);

    let eb_program = EbServer::new(&g, &part, &pre)
        .build_program()
        .expect("encode");
    let mut eb = EbClient::new(eb_program.summary());
    let got_eb = on_edge_query(&src, &dst, |q| {
        let mut ch = BroadcastChannel::lossless(eb_program.cycle());
        eb.query(&mut ch, q)
    })
    .unwrap();
    assert_eq!(Some(got_eb.distance), want);
}

#[test]
fn knn_tuning_is_selective_for_local_answers() {
    let g = spair::roadnet::generators::small_grid(16, 16, 9);
    let part = KdTreePartition::build(&g, 16);
    let pre = BorderPrecomputation::run(&g, &part);
    // POIs everywhere: the nearest few are always local.
    let pois: Vec<NodeId> = g.node_ids().step_by(5).collect();
    let program = KnnServer::new(&g, &part, &pre, &pois)
        .build_program()
        .expect("encode");
    let mut client = KnnClient::new(16);
    let mut ch = BroadcastChannel::lossless(program.cycle());
    let out = client.query(&mut ch, 0, g.point(0), 2).unwrap();
    assert_eq!(out.neighbors.len(), 2);
    assert!(
        (out.stats.tuning_packets as usize) < program.cycle().len() / 2,
        "tuned {} of {}",
        out.stats.tuning_packets,
        program.cycle().len()
    );
}

#[test]
fn hiti_hierarchy_depth_trades_index_for_tuning() {
    // Deeper hierarchies add super-edge levels (longer cycle, more index
    // bytes) but coarser groups for long-range queries.
    let g = spair::roadnet::generators::small_grid(14, 14, 4);
    let shallow = HiTiIndex::build(&g, 8, 1);
    let deep = HiTiIndex::build(&g, 8, 3);
    assert!(deep.index_bytes() > shallow.index_bytes());
    let ps = HiTiAirServer::new(&g, &shallow)
        .build_program()
        .expect("encode");
    let pd = HiTiAirServer::new(&g, &deep)
        .build_program()
        .expect("encode");
    assert!(pd.cycle().len() > ps.cycle().len());
    // Both remain exact.
    for program in [&ps, &pd] {
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = HiTiAirClient::new()
            .query(&mut ch, &Query::for_nodes(&g, 0, 195))
            .unwrap();
        assert_eq!(Some(out.distance), dijkstra_distance(&g, 0, 195));
    }
}
