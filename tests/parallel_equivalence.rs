//! Property tests for the parallel kernels: bucket-queue Dijkstra, the
//! queue-generic workspace, the parallel precomputation pipeline and the
//! SPQ first-hop/quadtree fast path must all agree exactly with their
//! serial / naive references on random generated networks.

use proptest::prelude::*;
use spair::prelude::*;
use spair_core::BorderPrecomputation;
use spair_roadnet::dijkstra::{
    dijkstra_with_options, DijkstraOptions, DijkstraWorkspace, Direction,
};
use spair_roadnet::first_hop::{first_hops_from_tree, first_hops_from_workspace, NO_FIRST_HOP};
use spair_roadnet::generators::GeneratorConfig;
use spair_roadnet::{dijkstra_full, NodeId, QueuePolicy, Weight};

fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (30usize..160, 0u64..1000, 0.05f64..0.6).prop_map(|(nodes, seed, extra)| {
        GeneratorConfig {
            nodes,
            undirected_edges: nodes - 1 + (nodes as f64 * extra) as usize,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    })
}

/// A random connected graph with tiny weights drawn from `{0, 1, 2}` —
/// zero-weight edges and massed shortest-path ties, the adversarial
/// input for the first-hop sweep's tie rule.
fn arb_tie_network() -> impl Strategy<Value = RoadNetwork> {
    (
        10usize..70,
        0u64..1000,
        proptest::collection::vec(0u32..3, 512),
    )
        .prop_map(|(nodes, seed, weights)| {
            let mut w = weights.into_iter().cycle();
            let mut next_w = move || w.next().expect("cycled") as Weight;
            let mut b = GraphBuilder::new();
            for i in 0..nodes {
                b.add_node(Point::new((i % 8) as f64, (i / 8) as f64));
            }
            // Deterministic spanning chain + seed-spread chords.
            for i in 1..nodes {
                b.add_undirected_edge((i - 1) as NodeId, i as NodeId, next_w());
            }
            for k in 0..nodes {
                let a = (seed as usize + k * 7) % nodes;
                let c = (seed as usize / 3 + k * 13) % nodes;
                if a != c {
                    b.add_edge(a as NodeId, c as NodeId, next_w());
                }
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bucket-queue Dijkstra settles every node at exactly the heap
    /// distances — full single-source trees from several sources.
    #[test]
    fn bucket_queue_dijkstra_matches_heap(g in arb_network(), src in 0usize..10_000) {
        let s = (src % g.num_nodes()) as NodeId;
        let heap = dijkstra_with_options(&g, s, DijkstraOptions {
            target: None,
            bound: None,
            queue: QueuePolicy::Heap,
        }).0;
        let bucket = dijkstra_with_options(&g, s, DijkstraOptions {
            target: None,
            bound: None,
            queue: QueuePolicy::Bucket,
        }).0;
        for v in g.node_ids() {
            prop_assert_eq!(heap.distance(v), bucket.distance(v), "node {}", v);
        }
        // Both settle the same node set (ties may reorder it).
        prop_assert_eq!(heap.settle_order().len(), bucket.settle_order().len());
    }

    /// Early-terminating point-to-point search agrees across policies,
    /// including `Auto` (which resolves to buckets on these weights).
    #[test]
    fn bucket_point_to_point_matches_heap(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let reference = dijkstra_with_options(&g, s, DijkstraOptions {
            target: Some(t),
            bound: None,
            queue: QueuePolicy::Heap,
        }).0.distance(t);
        for queue in [QueuePolicy::Bucket, QueuePolicy::Auto] {
            let got = dijkstra_with_options(&g, s, DijkstraOptions {
                target: Some(t),
                bound: None,
                queue,
            }).0.distance(t);
            prop_assert_eq!(reference, got);
        }
    }

    /// The reusable workspace produces heap-identical distances when
    /// driven by the bucket queue, across repeated runs (stamp reuse).
    #[test]
    fn bucket_workspace_matches_fresh_runs(g in arb_network(), seed in 0usize..10_000) {
        let mut ws = DijkstraWorkspace::for_graph(&g, QueuePolicy::Bucket);
        for step in 0..3usize {
            let s = ((seed + step * 41) % g.num_nodes()) as NodeId;
            ws.run(&g, s, Direction::Forward);
            let fresh = dijkstra_full(&g, s);
            for v in g.node_ids() {
                prop_assert_eq!(ws.distance(v), fresh.distance(v), "src {} node {}", s, v);
            }
        }
    }

    /// Parallel precomputation is bit-identical to the serial reference
    /// for every thread count, on random networks and partition sizes.
    #[test]
    fn parallel_precompute_matches_serial(
        g in arb_network(),
        regions_pow in 1u32..4,
        threads in 2usize..9,
    ) {
        let regions = 1usize << regions_pow;
        let part = KdTreePartition::build(&g, regions.max(2));
        let serial = BorderPrecomputation::run_serial(&g, &part);
        let par = BorderPrecomputation::run_with_threads(&g, &part, threads);
        prop_assert!(serial.same_tables(&par), "threads {} diverged", threads);
    }

    /// Differential first-hop test: the one-sweep DP over the settle
    /// order must color every node exactly as per-target path
    /// reconstruction from a fresh full Dijkstra does — including across
    /// zero-weight edges and shortest-path ties, where both sides must
    /// commit to `dijkstra_full`'s parents (strict-improvement rule;
    /// first matching out-edge position of the root).
    #[test]
    fn first_hop_dp_matches_full_dijkstra_colors(
        g in arb_tie_network(),
        root_pick in 0usize..10_000,
    ) {
        let root = (root_pick % g.num_nodes()) as NodeId;
        let tree = dijkstra_full(&g, root);
        let mut dp = vec![0u8; g.num_nodes()];
        first_hops_from_tree(&g, &tree, &mut dp);

        // The workspace-driven sweep (the SPQ build's production path)
        // must agree with the tree-driven one.
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        ws.run(&g, root, Direction::Forward);
        let mut dp_ws = vec![0u8; g.num_nodes()];
        first_hops_from_workspace(&g, &ws, &mut dp_ws);
        prop_assert_eq!(&dp, &dp_ws, "workspace sweep diverged from tree sweep");

        let first_edges: Vec<NodeId> = g.out_edges(root).map(|(u, _)| u).collect();
        for t in g.node_ids() {
            let want = if t == root {
                NO_FIRST_HOP
            } else {
                match tree.path_to(t) {
                    Some(path) => {
                        let i = first_edges
                            .iter()
                            .position(|&x| x == path[1])
                            .expect("path's first hop is a root out-edge");
                        // Same >= 255 guard as the production seed_color.
                        if i < NO_FIRST_HOP as usize {
                            i as u8
                        } else {
                            NO_FIRST_HOP
                        }
                    }
                    None => NO_FIRST_HOP,
                }
            };
            prop_assert_eq!(dp[t as usize], want, "root {} target {}", root, t);
        }
    }

    /// The SPQ fast path (workspace + first-hop sweep + quadtree
    /// template) must reproduce the naive per-root builder tree-for-tree
    /// on random networks, and the parallel fan-out must stay
    /// bit-identical to serial.
    #[test]
    fn spq_fast_build_matches_reference(
        g in arb_network(),
        threads in 2usize..6,
    ) {
        let fast = SpqIndex::build_serial(&g);
        let slow = SpqIndex::build_reference(&g);
        prop_assert!(fast.same_trees(&slow), "template build diverged from reference");
        let par = SpqIndex::build_with_threads(&g, threads);
        prop_assert!(fast.same_trees(&par), "threads {} diverged", threads);
    }

    /// The parallel pipeline feeds EB/NR unchanged: a client query over
    /// a parallel-built program still matches plain Dijkstra.
    #[test]
    fn nr_over_parallel_precompute_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
        threads in 2usize..6,
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run_with_threads(&g, &part, threads);
        let program = NrServer::new(&g, &part, &pre).build_program().expect("encode");
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let q = Query::for_nodes(&g, s, t);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = NrClient::new(program.summary()).query(&mut ch, &q);
        prop_assert_eq!(
            out.ok().map(|o| o.distance),
            spair_roadnet::dijkstra_distance(&g, s, t)
        );
    }
}

/// The CI determinism gate for the SPQ build: byte-identical indexes for
/// worker counts 1, 2 and 4, on a grid-topology network and on a
/// germany-class preset topology (the paper-scale cell's graph family).
#[test]
fn spq_build_is_thread_deterministic_on_grid_and_preset() {
    let graphs = [
        spair_roadnet::generators::small_grid(9, 9, 7),
        NetworkPreset::Germany
            .config_for_nodes(9001, 500)
            .generate(),
    ];
    for (gi, g) in graphs.iter().enumerate() {
        let serial = SpqIndex::build_with_threads(g, 1);
        for threads in [2usize, 4] {
            let par = SpqIndex::build_with_threads(g, threads);
            assert!(
                serial.same_trees(&par),
                "graph {gi}: threads {threads} diverged from serial"
            );
        }
    }
}
