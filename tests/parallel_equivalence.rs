//! Property tests for the PR-1 kernels: bucket-queue Dijkstra, the
//! queue-generic workspace, and the parallel precomputation pipeline
//! must all agree exactly with their serial / heap-driven references on
//! random generated networks.

use proptest::prelude::*;
use spair::prelude::*;
use spair_core::BorderPrecomputation;
use spair_roadnet::dijkstra::{
    dijkstra_with_options, DijkstraOptions, DijkstraWorkspace, Direction,
};
use spair_roadnet::generators::GeneratorConfig;
use spair_roadnet::{dijkstra_full, NodeId, QueuePolicy};

fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (30usize..160, 0u64..1000, 0.05f64..0.6).prop_map(|(nodes, seed, extra)| {
        GeneratorConfig {
            nodes,
            undirected_edges: nodes - 1 + (nodes as f64 * extra) as usize,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bucket-queue Dijkstra settles every node at exactly the heap
    /// distances — full single-source trees from several sources.
    #[test]
    fn bucket_queue_dijkstra_matches_heap(g in arb_network(), src in 0usize..10_000) {
        let s = (src % g.num_nodes()) as NodeId;
        let heap = dijkstra_with_options(&g, s, DijkstraOptions {
            target: None,
            bound: None,
            queue: QueuePolicy::Heap,
        }).0;
        let bucket = dijkstra_with_options(&g, s, DijkstraOptions {
            target: None,
            bound: None,
            queue: QueuePolicy::Bucket,
        }).0;
        for v in g.node_ids() {
            prop_assert_eq!(heap.distance(v), bucket.distance(v), "node {}", v);
        }
        // Both settle the same node set (ties may reorder it).
        prop_assert_eq!(heap.settle_order().len(), bucket.settle_order().len());
    }

    /// Early-terminating point-to-point search agrees across policies,
    /// including `Auto` (which resolves to buckets on these weights).
    #[test]
    fn bucket_point_to_point_matches_heap(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let reference = dijkstra_with_options(&g, s, DijkstraOptions {
            target: Some(t),
            bound: None,
            queue: QueuePolicy::Heap,
        }).0.distance(t);
        for queue in [QueuePolicy::Bucket, QueuePolicy::Auto] {
            let got = dijkstra_with_options(&g, s, DijkstraOptions {
                target: Some(t),
                bound: None,
                queue,
            }).0.distance(t);
            prop_assert_eq!(reference, got);
        }
    }

    /// The reusable workspace produces heap-identical distances when
    /// driven by the bucket queue, across repeated runs (stamp reuse).
    #[test]
    fn bucket_workspace_matches_fresh_runs(g in arb_network(), seed in 0usize..10_000) {
        let mut ws = DijkstraWorkspace::for_graph(&g, QueuePolicy::Bucket);
        for step in 0..3usize {
            let s = ((seed + step * 41) % g.num_nodes()) as NodeId;
            ws.run(&g, s, Direction::Forward);
            let fresh = dijkstra_full(&g, s);
            for v in g.node_ids() {
                prop_assert_eq!(ws.distance(v), fresh.distance(v), "src {} node {}", s, v);
            }
        }
    }

    /// Parallel precomputation is bit-identical to the serial reference
    /// for every thread count, on random networks and partition sizes.
    #[test]
    fn parallel_precompute_matches_serial(
        g in arb_network(),
        regions_pow in 1u32..4,
        threads in 2usize..9,
    ) {
        let regions = 1usize << regions_pow;
        let part = KdTreePartition::build(&g, regions.max(2));
        let serial = BorderPrecomputation::run_serial(&g, &part);
        let par = BorderPrecomputation::run_with_threads(&g, &part, threads);
        prop_assert!(serial.same_tables(&par), "threads {} diverged", threads);
    }

    /// The parallel pipeline feeds EB/NR unchanged: a client query over
    /// a parallel-built program still matches plain Dijkstra.
    #[test]
    fn nr_over_parallel_precompute_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
        threads in 2usize..6,
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run_with_threads(&g, &part, threads);
        let program = NrServer::new(&g, &part, &pre).build_program();
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let q = Query::for_nodes(&g, s, t);
        let mut ch = BroadcastChannel::lossless(program.cycle());
        let out = NrClient::new(program.summary()).query(&mut ch, &q);
        prop_assert_eq!(
            out.ok().map(|o| o.distance),
            spair_roadnet::dijkstra_distance(&g, s, t)
        );
    }
}
