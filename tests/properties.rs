//! Property-based tests (proptest) on the framework's core invariants:
//! random road networks, partitionings, and queries.

use proptest::prelude::*;
use spair::prelude::*;
use spair_roadnet::generators::GeneratorConfig;
use spair_roadnet::{dijkstra_distance, NodeId};

fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (30usize..180, 0u64..1000, 0.05f64..0.6).prop_map(|(nodes, seed, extra)| {
        GeneratorConfig {
            nodes,
            undirected_edges: nodes - 1 + (nodes as f64 * extra) as usize,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The NR client's answer equals whole-graph Dijkstra for arbitrary
    /// networks, partition sizes, queries and tune-in offsets.
    #[test]
    fn nr_always_matches_dijkstra(
        g in arb_network(),
        regions_pow in 1u32..4,
        pair in (0usize..10_000, 0usize..10_000),
        offset in 0usize..10_000,
    ) {
        let regions = 1usize << regions_pow;
        let part = KdTreePartition::build(&g, regions.max(2));
        let pre = BorderPrecomputation::run(&g, &part);
        let program = NrServer::new(&g, &part, &pre).build_program().expect("encode");
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let q = Query::for_nodes(&g, s, t);
        let mut ch = BroadcastChannel::tune_in(
            program.cycle(),
            offset % program.cycle().len(),
            LossModel::Lossless,
        );
        let out = NrClient::new(program.summary()).query(&mut ch, &q);
        prop_assert_eq!(out.ok().map(|o| o.distance), dijkstra_distance(&g, s, t));
    }

    /// Same for EB.
    #[test]
    fn eb_always_matches_dijkstra(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
        offset in 0usize..10_000,
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let program = EbServer::new(&g, &part, &pre).build_program().expect("encode");
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let q = Query::for_nodes(&g, s, t);
        let mut ch = BroadcastChannel::tune_in(
            program.cycle(),
            offset % program.cycle().len(),
            LossModel::Lossless,
        );
        let out = EbClient::new(program.summary()).query(&mut ch, &q);
        prop_assert_eq!(out.ok().map(|o| o.distance), dijkstra_distance(&g, s, t));
    }

    /// EB's pruning never discards a region that the true shortest path
    /// traverses (the §4 soundness argument, checked directly).
    #[test]
    fn eb_pruning_is_sound(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        prop_assume!(s != t);
        let rs = part.region_of(s);
        let rt = part.region_of(t);
        let ub = pre.minmax(rs, rt).max;
        if let Some((_, path)) = spair_roadnet::dijkstra_to_target(&g, s, t) {
            for &v in &path {
                let r = part.region_of(v);
                if r == rs || r == rt {
                    continue;
                }
                let a = pre.minmax(rs, r);
                let b = pre.minmax(r, rt);
                prop_assert!(
                    !a.is_empty() && !b.is_empty() && a.min + b.min <= ub,
                    "region {r} on the path would be pruned (ub {ub})"
                );
            }
        }
    }

    /// NR's traversed-region sets cover the true shortest path.
    #[test]
    fn nr_needed_regions_cover_the_path(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let rs = part.region_of(s);
        let rt = part.region_of(t);
        let needed = pre.needed_regions(rs, rt);
        // Restricting the search to the needed regions preserves the
        // distance (ties may route differently, so compare distances).
        let (res, _) = spair_roadnet::dijkstra::dijkstra_filtered(&g, s, t, |v| {
            needed.contains(part.region_of(v))
        });
        prop_assert_eq!(res.map(|(d, _)| d), dijkstra_distance(&g, s, t));
    }

    /// Kd-tree locate() agrees with the node assignment for every node,
    /// and the split-value round trip preserves it.
    #[test]
    fn kd_locator_round_trips(g in arb_network(), pow in 1u32..5) {
        let regions = 1usize << pow;
        let part = KdTreePartition::build(&g, regions.max(2));
        let rebuilt = spair::partition::KdLocator::from_splits(part.splits().to_vec());
        for v in g.node_ids() {
            prop_assert_eq!(rebuilt.locate(g.point(v)), part.region_of(v));
        }
    }

    /// Network codec round-trip: encode -> packets -> decode reproduces
    /// every adjacency list.
    #[test]
    fn netcodec_round_trips(g in arb_network()) {
        use spair::core::netcodec::{decode_payload, encode_nodes, ReceivedGraph};
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let mut store = ReceivedGraph::new();
        for payload in encode_nodes(&g, &nodes) {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(rec);
            }
        }
        prop_assert_eq!(store.num_nodes(), g.num_nodes());
        for v in g.node_ids() {
            let mut want: Vec<_> = g.out_edges(v).collect();
            let mut got = store.out_edges(v).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(want, got);
        }
    }

    /// NR and EB remain exact under arbitrary Bernoulli loss rates up to
    /// the paper's 10 % (the §6.2 recovery paths as a whole).
    #[test]
    fn nr_and_eb_exact_under_arbitrary_loss(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
        rate in 0.0f64..0.10,
        loss_seed in 0u64..10_000,
    ) {
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;
        let q = Query::for_nodes(&g, s, t);
        let want = dijkstra_distance(&g, s, t);

        let nr = NrServer::new(&g, &part, &pre).build_program().expect("encode");
        let mut ch = BroadcastChannel::tune_in(
            nr.cycle(),
            loss_seed as usize % nr.cycle().len(),
            LossModel::bernoulli(rate, loss_seed),
        );
        let out = NrClient::new(nr.summary()).query(&mut ch, &q);
        prop_assert_eq!(out.ok().map(|o| o.distance), want);

        let eb = EbServer::new(&g, &part, &pre).build_program().expect("encode");
        let mut ch = BroadcastChannel::tune_in(
            eb.cycle(),
            loss_seed as usize % eb.cycle().len(),
            LossModel::bernoulli(rate, loss_seed),
        );
        let out = EbClient::new(eb.summary()).query(&mut ch, &q);
        prop_assert_eq!(out.ok().map(|o| o.distance), want);
    }

    /// §6.1 memory-bound processing returns identical distances while
    /// retaining less than the raw region data.
    #[test]
    fn memory_bound_mode_is_lossless_in_answers(
        g in arb_network(),
        pair in (0usize..10_000, 0usize..10_000),
    ) {
        use spair::core::netcodec::{decode_payload, encode_nodes_with_borders, ReceivedGraph};
        let part = KdTreePartition::build(&g, 8);
        let pre = BorderPrecomputation::run(&g, &part);
        let s = (pair.0 % g.num_nodes()) as NodeId;
        let t = (pair.1 % g.num_nodes()) as NodeId;

        // Decode every region the way a client would.
        let mut store = ReceivedGraph::new();
        for r in 0..8usize {
            let nodes = &part.nodes_by_region()[r];
            for payload in
                encode_nodes_with_borders(&g, nodes, |v| pre.borders().is_border(v))
            {
                for rec in decode_payload(&payload).unwrap() {
                    store.ingest(rec);
                }
            }
        }
        let (plain, _) = store.shortest_path(s, t);

        let mut proc = MemoryBoundProcessor::new();
        for r in 0..8usize {
            let nodes = &part.nodes_by_region()[r];
            let terminals: Vec<NodeId> = [s, t]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        let contracted = proc.shortest_path(s, t);
        prop_assert_eq!(
            contracted.map(|(d, _)| d),
            plain.map(|(d, _)| d)
        );
    }

    /// The (1,m) interleaver never reorders or drops data packets and
    /// places exactly m index copies.
    #[test]
    fn interleave_preserves_data(
        chunk_sizes in prop::collection::vec(1usize..12, 1..10),
        index_len in 1usize..6,
        m in 1usize..8,
    ) {
        use bytes::Bytes;
        use spair::broadcast::cycle::SegmentKind;
        use spair::broadcast::interleave::{interleave_1m, DataChunk};
        use spair::broadcast::packet::PacketKind;
        let chunks: Vec<DataChunk> = chunk_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| DataChunk {
                kind: SegmentKind::RegionData(i as u16),
                packet_kind: PacketKind::Data,
                payloads: (0..n).map(|j| Bytes::from(vec![i as u8, j as u8])).collect(),
            })
            .collect();
        let index: Vec<Bytes> = (0..index_len).map(|i| Bytes::from(vec![0xFF, i as u8])).collect();
        let total: usize = chunk_sizes.iter().sum();
        let cycle = interleave_1m(index, chunks, m).finish();
        let copies = cycle
            .segments()
            .iter()
            .filter(|s| s.kind == SegmentKind::GlobalIndex)
            .count();
        prop_assert!(copies >= 1 && copies <= m);
        prop_assert_eq!(cycle.len(), total + copies * index_len);
        // Data order preserved.
        let regions: Vec<u16> = cycle
            .segments()
            .iter()
            .filter_map(|s| match s.kind {
                SegmentKind::RegionData(r) => Some(r),
                _ => None,
            })
            .collect();
        let want: Vec<u16> = (0..chunk_sizes.len() as u16).collect();
        prop_assert_eq!(regions, want);
    }
}
