//! End-to-end integration tests through the public `spair` facade: every
//! broadcast method must return exactly the whole-graph Dijkstra distance
//! for every query, from every tune-in position, with and without packet
//! loss.

use spair::prelude::*;
use spair_baselines::arcflag::{ArcFlagIndex, ArcFlagServer};
use spair_baselines::dj::DjServer;
use spair_baselines::landmark::{LandmarkIndex, LandmarkServer};
use spair_roadnet::generators::GeneratorConfig;
use spair_roadnet::{dijkstra_distance, NodeId};

fn network(seed: u64, nodes: usize) -> RoadNetwork {
    GeneratorConfig {
        nodes,
        undirected_edges: (nodes as f64 * 1.3) as usize,
        seed,
        ..GeneratorConfig::default()
    }
    .generate()
}

struct Setup {
    g: RoadNetwork,
    nr: spair::core::NrProgram,
    eb: spair::core::EbProgram,
    dj: spair_baselines::DjProgram,
    af: spair_baselines::ArcFlagProgram,
    ld: spair_baselines::LandmarkProgram,
}

fn setup(seed: u64, nodes: usize, regions: usize) -> Setup {
    let g = network(seed, nodes);
    let part = KdTreePartition::build(&g, regions);
    let pre = BorderPrecomputation::run(&g, &part);
    let nr = NrServer::new(&g, &part, &pre)
        .build_program()
        .expect("encode");
    let eb = EbServer::new(&g, &part, &pre)
        .build_program()
        .expect("encode");
    let dj = DjServer::new(&g).build_program();
    let af_index = ArcFlagIndex::build(&g, &part);
    let af = ArcFlagServer::new(&g, &part, &af_index)
        .build_program()
        .expect("encode");
    let ld_index = LandmarkIndex::build(&g, 3);
    let ld = LandmarkServer::new(&g, &ld_index).build_program();
    Setup {
        g,
        nr,
        eb,
        dj,
        af,
        ld,
    }
}

fn queries(g: &RoadNetwork, n: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..g.num_nodes()) as NodeId,
                rng.gen_range(0..g.num_nodes()) as NodeId,
            )
        })
        .collect()
}

fn check_all(s: &Setup, loss: f64, qseed: u64, n_queries: usize) {
    let regions = 8usize;
    for (i, (a, b)) in queries(&s.g, n_queries, qseed).into_iter().enumerate() {
        let q = Query::for_nodes(&s.g, a, b);
        let want = dijkstra_distance(&s.g, a, b);
        let offset = (i * 61) % s.nr.cycle().len();
        let mk_loss = |seed: u64| {
            if loss > 0.0 {
                LossModel::bernoulli(loss, seed)
            } else {
                LossModel::Lossless
            }
        };
        let outcomes: Vec<(&str, Result<QueryOutcome, QueryError>)> = vec![
            ("NR", {
                let mut ch = BroadcastChannel::tune_in(s.nr.cycle(), offset, mk_loss(i as u64));
                NrClient::new(s.nr.summary()).query(&mut ch, &q)
            }),
            ("EB", {
                let mut ch = BroadcastChannel::tune_in(
                    s.eb.cycle(),
                    offset % s.eb.cycle().len(),
                    mk_loss(i as u64 + 100),
                );
                EbClient::new(s.eb.summary()).query(&mut ch, &q)
            }),
            ("DJ", {
                let mut ch = BroadcastChannel::tune_in(
                    s.dj.cycle(),
                    offset % s.dj.cycle().len(),
                    mk_loss(i as u64 + 200),
                );
                DjClient::new().query(&mut ch, &q)
            }),
            ("AF", {
                let mut ch = BroadcastChannel::tune_in(
                    s.af.cycle(),
                    offset % s.af.cycle().len(),
                    mk_loss(i as u64 + 300),
                );
                ArcFlagClient::new(regions).query(&mut ch, &q)
            }),
            ("LD", {
                let mut ch = BroadcastChannel::tune_in(
                    s.ld.cycle(),
                    offset % s.ld.cycle().len(),
                    mk_loss(i as u64 + 400),
                );
                LandmarkClient::new().query(&mut ch, &q)
            }),
        ];
        for (name, out) in outcomes {
            match (&want, out) {
                (Some(w), Ok(o)) => assert_eq!(*w, o.distance, "{name} query {a}->{b}"),
                (None, Err(QueryError::Unreachable)) => {}
                (None, Ok(o)) if a == b => assert_eq!(o.distance, 0),
                (w, o) => panic!("{name} {a}->{b}: want {w:?}, got {o:?}"),
            }
        }
    }
}

#[test]
fn all_methods_exact_lossless() {
    let s = setup(1, 150, 8);
    check_all(&s, 0.0, 10, 12);
}

#[test]
fn all_methods_exact_under_moderate_loss() {
    let s = setup(2, 120, 8);
    check_all(&s, 0.02, 20, 6);
}

#[test]
fn all_methods_exact_under_paper_max_loss() {
    let s = setup(3, 100, 8);
    check_all(&s, 0.10, 30, 4);
}

#[test]
fn selective_tuning_beats_whole_cycle() {
    // The headline claim: NR and EB listen to fewer packets than DJ for
    // short-range queries.
    let s = setup(4, 400, 16);
    // Nearby pair (spatially close ids in the jittered grid layout).
    let q = Query::for_nodes(&s.g, 10, 12);
    let mut ch = BroadcastChannel::lossless(s.nr.cycle());
    let nr = NrClient::new(s.nr.summary()).query(&mut ch, &q).unwrap();
    let mut ch = BroadcastChannel::lossless(s.dj.cycle());
    let dj = DjClient::new().query(&mut ch, &q).unwrap();
    assert_eq!(nr.distance, dj.distance);
    assert!(
        nr.stats.tuning_packets < dj.stats.tuning_packets,
        "NR {} must tune less than DJ {}",
        nr.stats.tuning_packets,
        dj.stats.tuning_packets
    );
    assert!(nr.stats.peak_memory_bytes < dj.stats.peak_memory_bytes);
}

#[test]
fn access_latency_stays_within_cycles() {
    let s = setup(5, 200, 8);
    for (i, (a, b)) in queries(&s.g, 8, 50).into_iter().enumerate() {
        if a == b {
            continue;
        }
        let q = Query::for_nodes(&s.g, a, b);
        let mut ch = BroadcastChannel::tune_in(s.nr.cycle(), i * 97, LossModel::Lossless);
        let out = NrClient::new(s.nr.summary()).query(&mut ch, &q).unwrap();
        assert!(
            (out.stats.latency_packets as usize) <= 2 * s.nr.cycle().len(),
            "latency {} on cycle {}",
            out.stats.latency_packets,
            s.nr.cycle().len()
        );
    }
}

#[test]
fn returned_paths_are_real_paths() {
    let s = setup(6, 150, 8);
    for (a, b) in queries(&s.g, 6, 60) {
        if a == b {
            continue;
        }
        let q = Query::for_nodes(&s.g, a, b);
        let mut ch = BroadcastChannel::lossless(s.eb.cycle());
        if let Ok(out) = EbClient::new(s.eb.summary()).query(&mut ch, &q) {
            let mut acc = 0u64;
            for w in out.path.windows(2) {
                acc += s.g.weight_between(w[0], w[1]).expect("edge exists") as u64;
            }
            assert_eq!(acc, out.distance);
            assert_eq!(out.path.first(), Some(&a));
            assert_eq!(out.path.last(), Some(&b));
        }
    }
}

#[test]
fn memory_bound_mode_preserves_answers() {
    use spair::core::netcodec::{decode_payload, encode_nodes_with_borders, ReceivedGraph};
    let g = network(7, 200);
    let part = KdTreePartition::build(&g, 8);
    let pre = BorderPrecomputation::run(&g, &part);
    let mut store = ReceivedGraph::new();
    for r in 0..part.num_regions() {
        let nodes = &part.nodes_by_region()[r];
        for payload in encode_nodes_with_borders(&g, nodes, |v| pre.borders().is_border(v)) {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(rec);
            }
        }
    }
    for (a, b) in queries(&g, 6, 70) {
        let mut proc = MemoryBoundProcessor::with_paths();
        for nodes in part.nodes_by_region() {
            let terminals: Vec<_> = [a, b]
                .iter()
                .copied()
                .filter(|v| nodes.contains(v))
                .collect();
            proc.add_region(&store, nodes, &terminals);
        }
        assert_eq!(
            proc.shortest_path(a, b).map(|(d, _)| d),
            dijkstra_distance(&g, a, b),
            "{a}->{b}"
        );
    }
}
