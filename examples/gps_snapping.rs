//! Arbitrary client locations (§5, closing remark): in practice the
//! source and destination are GPS fixes, not network nodes. The client
//! snaps both to the nearest network nodes with the bucket-grid locator
//! and proceeds as usual; the same snapping also answers "which region am
//! I in" directly from the kd splitting values.
//!
//! Run with: `cargo run --release --example gps_snapping`

use spair::prelude::*;
use spair::roadnet::NodeLocator;

fn main() {
    let network = NetworkPreset::Milan.scaled_config(9, 0.05).generate();
    let part = KdTreePartition::build(&network, 16);
    let pre = BorderPrecomputation::run(&network, &part);
    let program = NrServer::new(&network, &part, &pre)
        .build_program()
        .expect("encode");
    let locator = NodeLocator::build(&network);

    // Two raw GPS fixes somewhere between intersections.
    let here = Point::new(731.4, 492.8);
    let there = Point::new(4312.9, 3279.2);
    let s = locator.nearest(here);
    let t = locator.nearest(there);
    println!(
        "GPS ({:.0},{:.0}) snapped to node {s} at ({:.0},{:.0})",
        here.x,
        here.y,
        network.point(s).x,
        network.point(s).y
    );
    println!(
        "GPS ({:.0},{:.0}) snapped to node {t} at ({:.0},{:.0})",
        there.x,
        there.y,
        network.point(t).x,
        network.point(t).y
    );
    println!(
        "kd regions: R{} -> R{}",
        part.locate(here),
        part.locate(there)
    );

    let mut channel = BroadcastChannel::lossless(program.cycle());
    let mut client = NrClient::new(program.summary());
    let out = client
        .query(&mut channel, &Query::for_nodes(&network, s, t))
        .expect("reachable");
    println!(
        "\nroute: {} network units over {} road segments, \
         after {} received packets",
        out.distance,
        out.path.len() - 1,
        out.stats.tuning_packets
    );

    // Local (offline) cross-check with bidirectional Dijkstra.
    let check = spair::roadnet::bidirectional_distance(&network, s, t);
    assert_eq!(check, Some(out.distance));
    println!("cross-checked with bidirectional Dijkstra ✓");
}
