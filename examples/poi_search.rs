//! On-air k-nearest-neighbour search: "find the 3 nearest gas stations"
//! over a broadcast channel — the paper's §8 future work, built on EB's
//! index machinery.
//!
//! The broadcast cycle carries the EB index (kd splits + min/max
//! border-distance matrix + region offsets) plus a POI id stream. The
//! client receives regions in ascending `min(Rs, ·)` order and stops as
//! soon as the k-th candidate's distance beats the next region's lower
//! bound — it never listens to the far side of the network.
//!
//! Run with: `cargo run --release --example poi_search`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spair::prelude::*;
use spair::roadnet::NodeId;

fn main() {
    let network = NetworkPreset::Germany.scaled_config(7, 0.05).generate();
    let partitioning = KdTreePartition::build(&network, 32);
    let precomputed = BorderPrecomputation::run(&network, &partitioning);

    // One node in fifty hosts a gas station.
    let mut rng = StdRng::seed_from_u64(99);
    let mut stations: Vec<NodeId> = (0..network.num_nodes() / 50)
        .map(|_| rng.gen_range(0..network.num_nodes()) as NodeId)
        .collect();
    stations.sort_unstable();
    stations.dedup();

    let program = KnnServer::new(&network, &partitioning, &precomputed, &stations)
        .build_program()
        .expect("encode");
    println!(
        "network: {} nodes, {} gas stations, cycle {} packets",
        network.num_nodes(),
        stations.len(),
        program.cycle().len()
    );

    let mut client = KnnClient::new(partitioning.num_regions());
    for &source in &[0 as NodeId, (network.num_nodes() / 3) as NodeId] {
        let mut channel = BroadcastChannel::tune_in(
            program.cycle(),
            program.cycle().len() / 2,
            LossModel::Lossless,
        );
        let out = client
            .query(&mut channel, source, network.point(source), 3)
            .expect("channel healthy");
        println!("\n3 nearest stations to node {source}:");
        for nb in &out.neighbors {
            println!(
                "  station at node {:>6}  network distance {:>8}",
                nb.node, nb.distance
            );
        }
        println!(
            "  tuning {} packets of a {}-packet cycle ({:.0}% pruned)",
            out.stats.tuning_packets,
            program.cycle().len(),
            100.0 * (1.0 - out.stats.tuning_packets as f64 / program.cycle().len() as f64)
        );

        // Cross-check against exhaustive Dijkstra.
        let tree = spair::roadnet::dijkstra_full(&network, source);
        let mut want: Vec<u64> = stations
            .iter()
            .filter(|&&p| tree.reachable(p))
            .map(|&p| tree.distance(p))
            .collect();
        want.sort_unstable();
        want.truncate(3);
        let got: Vec<u64> = out.neighbors.iter().map(|n| n.distance).collect();
        assert_eq!(got, want, "matches exhaustive search");
    }
    println!("\nall answers verified against exhaustive Dijkstra");
}
