//! On-edge navigation: source and destination at arbitrary positions on
//! road segments, not on intersections (paper §5, closing remark).
//!
//! A driver is halfway down a street; the destination is two thirds down
//! another street. The client decomposes the on-edge query over the edge
//! endpoints, runs ordinary NR air queries for the node-to-node legs, and
//! stitches the partial edge segments back on.
//!
//! Run with: `cargo run --release --example on_edge_navigation`

use spair::prelude::*;
use spair::roadnet::{insert_positions, EdgePosition, NodeId, Weight};

fn main() {
    let network = NetworkPreset::Milan.scaled_config(42, 0.02).generate();
    let partitioning = KdTreePartition::build(&network, 16);
    let precomputed = BorderPrecomputation::run(&network, &partitioning);
    let program = NrServer::new(&network, &partitioning, &precomputed)
        .build_program()
        .expect("encode");
    println!(
        "network: {} nodes, cycle {} packets",
        network.num_nodes(),
        program.cycle().len()
    );

    // Two splittable road segments, far apart.
    let (u1, v1, w1) = splittable_arc(&network, 0);
    let (u2, v2, w2) = splittable_arc(&network, network.num_nodes() as NodeId / 2);
    let src = OnEdgePoint::on_undirected(&network, u1, v1, w1 / 2);
    let dst = OnEdgePoint::on_undirected(&network, u2, v2, 2 * (w2 / 3).max(1));
    println!(
        "source:  {}..{} at {:.0}% of the segment",
        u1,
        v1,
        100.0 * (w1 / 2) as f64 / w1 as f64
    );
    println!(
        "target:  {}..{} at {:.0}% of the segment",
        u2,
        v2,
        100.0 * (2 * (w2 / 3).max(1)) as f64 / w2 as f64
    );

    // Each node-to-node leg is an ordinary NR query over a fresh tune-in.
    let mut client = NrClient::new(program.summary());
    let mut runs = 0usize;
    let outcome = on_edge_query(&src, &dst, |q| {
        runs += 1;
        let mut channel = BroadcastChannel::tune_in(
            program.cycle(),
            (runs * 101) % program.cycle().len(),
            LossModel::Lossless,
        );
        client.query(&mut channel, q)
    })
    .expect("reachable");

    println!("\non-edge shortest path:");
    println!("  distance        : {}", outcome.distance);
    println!(
        "  first segment   : {} weight units to enter the grid",
        outcome.src_partial
    );
    println!(
        "  node path hops  : {}",
        outcome.nodes.len().saturating_sub(1)
    );
    println!(
        "  last segment    : {} weight units after leaving it",
        outcome.dst_partial
    );
    println!("  air queries run : {runs}");
    println!(
        "  total tuning    : {} packets (upper bound; §5's border \
         redefinition would share one reception)",
        outcome.stats.tuning_packets
    );

    // Cross-check against physically splitting the edges.
    let (reference, ids) = insert_positions(
        &network,
        &[
            EdgePosition {
                from: u1,
                to: v1,
                along: w1 / 2,
            },
            EdgePosition {
                from: u2,
                to: v2,
                along: 2 * (w2 / 3).max(1),
            },
        ],
    );
    let want = spair::roadnet::dijkstra_distance(&reference, ids[0], ids[1]);
    assert_eq!(
        Some(outcome.distance),
        want,
        "matches the split-graph reference"
    );
    println!("\nverified against the split-graph reference: {want:?}");
}

/// First arc with weight >= 4 starting the scan at `from`.
fn splittable_arc(g: &RoadNetwork, from: NodeId) -> (NodeId, NodeId, Weight) {
    for v in (from..g.num_nodes() as NodeId).chain(0..from) {
        for (u, w) in g.out_edges(v) {
            if w >= 4 && g.weight_between(u, v) == Some(w) {
                return (v, u, w);
            }
        }
    }
    panic!("no splittable arc");
}
