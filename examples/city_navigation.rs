//! City navigation: the paper's motivating scenario. A city broadcasts its
//! road network; commuters with GPS phones compute driving routes locally
//! without ever contacting a server (infinite scalability, full privacy).
//!
//! Compares the five per-query methods on a Milan-sized network for one
//! commute, printing the §3.1 performance factors side by side.
//!
//! Run with: `cargo run --release --example city_navigation`

use spair::prelude::*;
use spair_baselines::arcflag::{ArcFlagIndex, ArcFlagServer};
use spair_baselines::dj::DjServer;
use spair_baselines::landmark::{LandmarkIndex, LandmarkServer};

fn main() {
    // Milan at 10% scale so the example runs in seconds.
    let network = NetworkPreset::Milan.scaled_config(2026, 0.1).generate();
    println!(
        "Milan-like network: {} nodes / {} directed edges",
        network.num_nodes(),
        network.num_edges()
    );

    // Server-side setup for every method.
    let part32 = KdTreePartition::build(&network, 32);
    let pre = BorderPrecomputation::run(&network, &part32);
    let nr = NrServer::new(&network, &part32, &pre)
        .build_program()
        .expect("encode");
    let eb = EbServer::new(&network, &part32, &pre)
        .build_program()
        .expect("encode");
    let dj = DjServer::new(&network).build_program();
    let part16 = KdTreePartition::build(&network, 16);
    let af_index = ArcFlagIndex::build(&network, &part16);
    let af = ArcFlagServer::new(&network, &part16, &af_index)
        .build_program()
        .expect("encode");
    let ld_index = LandmarkIndex::build(&network, 4);
    let ld = LandmarkServer::new(&network, &ld_index).build_program();

    // One commute across town (node ids picked from opposite corners).
    let query = Query::for_nodes(&network, 17, (network.num_nodes() - 13) as u32);
    println!(
        "\ncommute {} -> {} (tune in at a random instant, 384 Kbps moving channel)\n",
        query.source, query.target
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>11} {:>10}",
        "method", "cycle", "tuning", "latency", "memory(KB)", "energy(J)"
    );

    let run = |name: &str, cycle: &spair::broadcast::BroadcastCycle, client: &mut dyn AirClient| {
        let mut ch = BroadcastChannel::tune_in(cycle, cycle.len() / 2, LossModel::Lossless);
        let out = client.query(&mut ch, &query).expect("reachable");
        let energy = EnergyModel::WAVELAN_ARM.joules(&out.stats, ChannelRate::MOVING_3G);
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>11.1} {:>10.3}",
            name,
            cycle.len(),
            out.stats.tuning_packets,
            out.stats.latency_packets,
            out.stats.peak_memory_bytes as f64 / 1024.0,
            energy
        );
        out.distance
    };

    let d1 = run("NR", nr.cycle(), &mut NrClient::new(nr.summary()));
    let d2 = run("EB", eb.cycle(), &mut EbClient::new(eb.summary()));
    let d3 = run("Dijkstra", dj.cycle(), &mut DjClient::new());
    let d4 = run("Landmark", ld.cycle(), &mut LandmarkClient::new());
    let d5 = run("ArcFlag", af.cycle(), &mut ArcFlagClient::new(16));

    assert!(
        d1 == d2 && d2 == d3 && d3 == d4 && d4 == d5,
        "all methods agree"
    );
    println!("\nall five methods computed the same distance: {d1} ✓");
    println!("NR/EB tune to a fraction of the cycle; the baselines must hear all of it.");
}
