//! Packet loss on a noisy wireless channel (§6.2): the same query under
//! rising loss rates, showing that NR recovers gracefully — lost packets
//! are re-received in later cycles, answers stay exact, and tuning time
//! degrades in proportion to the loss.
//!
//! Run with: `cargo run --release --example lossy_channel`

use spair::prelude::*;

fn main() {
    let network = spair::roadnet::generators::small_grid(24, 24, 11);
    let part = KdTreePartition::build(&network, 16);
    let pre = BorderPrecomputation::run(&network, &part);
    let program = NrServer::new(&network, &part, &pre)
        .build_program()
        .expect("encode");
    let query = Query::for_nodes(&network, 0, (network.num_nodes() - 1) as u32);
    let reference =
        spair::roadnet::dijkstra_distance(&network, query.source, query.target).unwrap();

    println!(
        "NR over a lossy channel — cycle {} packets, true distance {}",
        program.cycle().len(),
        reference
    );
    println!(
        "\n{:>8} {:>12} {:>12} {:>10}",
        "loss", "tuning", "latency", "exact?"
    );
    for rate in [0.0, 0.001, 0.005, 0.01, 0.05, 0.10] {
        // Average a few seeds per rate.
        let trials = 8;
        let mut tuning = 0u64;
        let mut latency = 0u64;
        let mut all_exact = true;
        for seed in 0..trials {
            let loss = if rate == 0.0 {
                LossModel::Lossless
            } else {
                LossModel::bernoulli(rate, seed)
            };
            let mut ch = BroadcastChannel::tune_in(program.cycle(), 37 * seed as usize, loss);
            let mut client = NrClient::new(program.summary());
            let out = client.query(&mut ch, &query).expect("recoverable");
            tuning += out.stats.tuning_packets;
            latency += out.stats.latency_packets;
            all_exact &= out.distance == reference;
        }
        println!(
            "{:>7.1}% {:>12} {:>12} {:>10}",
            rate * 100.0,
            tuning / trials,
            latency / trials,
            if all_exact { "yes" } else { "NO" }
        );
        assert!(all_exact, "NR must stay exact under loss");
    }
    println!("\nevery run returned the exact shortest path despite the losses ✓");
}
