//! Memory-bound processing (§6.1): a device with a tiny heap contracts
//! each received region into super-edges and discards the raw data,
//! trading CPU for peak memory while keeping answers exact.
//!
//! Run with: `cargo run --release --example memory_bound_device`

use spair::core::netcodec::{decode_payload, encode_nodes_with_borders, ReceivedGraph};
use spair::prelude::*;

fn main() {
    let network = NetworkPreset::Germany.scaled_config(3, 0.05).generate();
    let part = KdTreePartition::build(&network, 16);
    let pre = BorderPrecomputation::run(&network, &part);
    println!(
        "network: {} nodes, {} regions, {} border nodes",
        network.num_nodes(),
        part.num_regions(),
        pre.borders().count()
    );

    // What the client would have decoded off the air, border flags included.
    let mut store = ReceivedGraph::new();
    for r in 0..part.num_regions() {
        let nodes = &part.nodes_by_region()[r];
        for payload in encode_nodes_with_borders(&network, nodes, |v| pre.borders().is_border(v)) {
            for rec in decode_payload(&payload).unwrap() {
                store.ingest(rec);
            }
        }
    }

    let (s, t) = (5u32, (network.num_nodes() - 7) as u32);
    let (rs, rt) = (part.region_of(s), part.region_of(t));
    let needed: Vec<_> = pre.needed_regions(rs, rt).iter().collect();
    println!(
        "query {s} -> {t}: NR needs {} of {} regions",
        needed.len(),
        part.num_regions()
    );

    // Plain processing: hold every needed region until the final search.
    let plain_bytes: usize = needed
        .iter()
        .flat_map(|&r| part.nodes_by_region()[r as usize].iter())
        .map(|&v| 16 + 8 * store.out_edges(v).len())
        .sum();
    let (plain, _) = store.shortest_path(s, t);
    let plain = plain.expect("reachable");

    // §6.1: contract each region as it completes, discard its raw data.
    let mut proc = MemoryBoundProcessor::new();
    for &r in &needed {
        let nodes = &part.nodes_by_region()[r as usize];
        let terminals: Vec<u32> = [s, t]
            .iter()
            .copied()
            .filter(|v| nodes.contains(v))
            .collect();
        proc.add_region(&store, nodes, &terminals);
    }
    let (dist, _) = proc.shortest_path(s, t).expect("reachable");

    println!("\n{:<22} {:>12} {:>12}", "", "plain", "super-edges");
    println!(
        "{:<22} {:>10.1} KB {:>10.1} KB",
        "peak client memory",
        plain_bytes as f64 / 1024.0,
        proc.mem.peak() as f64 / 1024.0
    );
    println!("{:<22} {:>12} {:>12}", "distance", plain.0, dist);
    assert_eq!(plain.0, dist, "contraction must preserve the distance");
    let saving = 100.0 * (1.0 - proc.mem.peak() as f64 / plain_bytes as f64);
    println!(
        "\nsuper-edge contraction cut peak memory by {saving:.0}% (paper reports ~35%) \
         at {:.2} ms extra CPU",
        proc.cpu.total().as_secs_f64() * 1000.0
    );
}
