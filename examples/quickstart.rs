//! Quickstart: broadcast a small road network with the NR method and
//! answer one shortest-path query at the client.
//!
//! Run with: `cargo run --release --example quickstart`

use spair::prelude::*;

fn main() {
    // 1. The server side: a road network, a kd partitioning, and the
    //    border-pair precomputation both EB and NR share.
    let network = spair::roadnet::generators::small_grid(20, 20, 7);
    println!(
        "network: {} nodes / {} directed edges",
        network.num_nodes(),
        network.num_edges()
    );
    let partitioning = KdTreePartition::build(&network, 16);
    let precomputed = BorderPrecomputation::run(&network, &partitioning);
    let program = NrServer::new(&network, &partitioning, &precomputed)
        .build_program()
        .expect("encode");
    println!(
        "broadcast cycle: {} packets of 128 bytes",
        program.cycle().len()
    );

    // 2. The client side: tune in mid-cycle, hop between local indexes,
    //    receive only the regions that can contain the shortest path.
    let query = Query::for_nodes(&network, 3, 396);
    let mut channel = BroadcastChannel::tune_in(
        program.cycle(),
        program.cycle().len() / 3,
        LossModel::Lossless,
    );
    let mut client = NrClient::new(program.summary());
    let outcome = client.query(&mut channel, &query).expect("reachable");

    println!("\nshortest path {} -> {}:", query.source, query.target);
    println!("  distance       : {}", outcome.distance);
    println!("  hops           : {}", outcome.path.len() - 1);
    println!(
        "  tuning time    : {} packets",
        outcome.stats.tuning_packets
    );
    println!(
        "  access latency : {} packets",
        outcome.stats.latency_packets
    );
    println!(
        "  peak memory    : {:.1} KB",
        outcome.stats.peak_memory_bytes as f64 / 1024.0
    );
    let energy = EnergyModel::WAVELAN_ARM.joules(&outcome.stats, ChannelRate::MOVING_3G);
    println!("  energy (384k)  : {energy:.3} J");
    println!(
        "\nthe client listened to {:.1}% of the cycle and slept through the rest",
        100.0 * outcome.stats.tuning_packets as f64 / program.cycle().len() as f64
    );

    // Sanity: the broadcast answer equals a local whole-graph Dijkstra.
    let reference = spair::roadnet::dijkstra_distance(&network, query.source, query.target);
    assert_eq!(Some(outcome.distance), reference);
    println!("verified against whole-graph Dijkstra ✓");
}
