//! # spair — Shortest Path Computation on Air Indexes
//!
//! A full reproduction of Kellaris & Mouratidis, *"Shortest Path Computation
//! on Air Indexes"*, PVLDB 3(1), 2010: shortest-path query processing for
//! mobile clients that listen to a wireless broadcast channel instead of
//! querying a server.
//!
//! The workspace is organized as:
//!
//! * [`roadnet`] — road-network graphs, Dijkstra/A*, synthetic generators;
//! * [`partition`] — kd-tree / grid partitioning and border-node analysis;
//! * [`broadcast`] — the wireless broadcast substrate (packets, cycles,
//!   (1,m) interleaving, lossy channel, energy model, device profiles);
//! * [`baselines`] — air adaptations of Dijkstra, ArcFlag, Landmark, HiTi
//!   and SPQ (paper §3.2 and §2.1);
//! * [`core`] — the paper's contribution: the Elliptic Boundary (EB, §4)
//!   and Next Region (NR, §5) methods, memory-bound processing (§6.1) and
//!   packet-loss hardening (§6.2).
//!
//! ## Quickstart
//!
//! ```
//! use spair::prelude::*;
//!
//! // A small road network and a broadcast server for the NR method.
//! let network = spair::roadnet::generators::small_grid(12, 12, 7);
//! let partitioning = KdTreePartition::build(&network, 16);
//! let precomputed = BorderPrecomputation::run(&network, &partitioning);
//! let program = NrServer::new(&network, &partitioning, &precomputed)
//!     .build_program()
//!     .expect("counters fit the wire format");
//!
//! // A client tunes in at an arbitrary moment and asks for a shortest path.
//! let mut channel = BroadcastChannel::lossless(program.cycle());
//! let mut client = NrClient::new(program.summary());
//! let outcome = client
//!     .query(&mut channel, &Query::for_nodes(&network, 5, 120))
//!     .expect("target reachable");
//! assert_eq!(
//!     Some(outcome.distance),
//!     spair::roadnet::dijkstra_distance(&network, 5, 120)
//! );
//! // The client listened to only part of the cycle:
//! assert!((outcome.stats.tuning_packets as usize) < program.cycle().len());
//! ```

pub use spair_baselines as baselines;
pub use spair_broadcast as broadcast;
pub use spair_core as core;
pub use spair_partition as partition;
pub use spair_roadnet as roadnet;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use spair_baselines::{
        ArcFlagClient, DjClient, HiTiAirClient, HiTiAirServer, HiTiIndex, LandmarkClient,
        SpqAirServer, SpqClient, SpqIndex,
    };
    pub use spair_broadcast::{
        BroadcastChannel, ChannelRate, DeviceProfile, EnergyModel, LossModel, QueryStats,
    };
    pub use spair_core::query::AirClient;
    pub use spair_core::{
        on_edge_query, BorderPrecomputation, EbClient, EbServer, KnnClient, KnnServer,
        MemoryBoundProcessor, NrClient, NrServer, OnEdgeOutcome, OnEdgePoint, Query, QueryError,
        QueryOutcome,
    };
    pub use spair_partition::{KdTreePartition, Partitioning, RegionId};
    pub use spair_roadnet::{GraphBuilder, NetworkPreset, Point, RoadNetwork};
}
