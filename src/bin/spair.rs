//! `spair` — command-line front end for the air-index framework.
//!
//! ```text
//! spair generate --preset germany --scale 0.1 --seed 7 -o map.gr
//! spair inspect  map.gr
//! spair serve    map.gr --method nr --regions 32      # cycle statistics
//! spair query    map.gr --method eb --from 10 --to 9000 [--loss 0.01]
//! spair knn      map.gr --from 10 --k 3 --poi-every 50
//! ```
//!
//! `generate` writes the DIMACS-style text format `roadnet::io` reads, so
//! real road data can be substituted for the synthetic presets. All other
//! subcommands accept any file in that format.

use spair::prelude::*;
use spair::roadnet::{self, NodeId};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => generate(rest),
        "inspect" => inspect(rest),
        "serve" => serve(rest),
        "query" => query(rest),
        "knn" => knn(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
spair — shortest paths on air indexes (VLDB'10 reproduction)

commands:
  generate --preset <milan|germany|argentina|india|sanfrancisco>
           [--scale <f>] [--seed <n>] -o <file>     write a synthetic network
  inspect  <file>                                   network statistics
  serve    <file> [--method <nr|eb|dj|af|ld>] [--regions <n>]
                                                    broadcast-cycle statistics
  query    <file> --from <node> --to <node> [--method <m>] [--regions <n>]
           [--loss <rate>] [--offset <packets>]     run one client query
  knn      <file> --from <node> [--k <n>] [--poi-every <n>] [--regions <n>]
                                                    on-air k-nearest-neighbour";

/// Tiny flag parser: `--key value` pairs plus positionals.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-').filter(|k| k.len() == 1));
            if let Some(key) = key {
                let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { positional, pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value '{v}'")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn file(&self) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| "a network file is required".to_string())
    }
}

fn load(path: &str) -> Result<RoadNetwork, String> {
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    roadnet::io::read_text(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let preset = match flags.require("preset")?.to_ascii_lowercase().as_str() {
        "milan" => NetworkPreset::Milan,
        "germany" => NetworkPreset::Germany,
        "argentina" => NetworkPreset::Argentina,
        "india" => NetworkPreset::India,
        "sanfrancisco" | "san-francisco" | "sf" => NetworkPreset::SanFrancisco,
        other => return Err(format!("unknown preset '{other}'")),
    };
    let scale: f64 = flags.get_parsed("scale", 1.0)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let out = flags.require("o")?;
    let g = preset.scaled_config(seed, scale).generate();
    let f = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    roadnet::io::write_text(&g, BufWriter::new(f)).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} directed edges ({} @ scale {scale}, seed {seed})",
        g.num_nodes(),
        g.num_edges(),
        preset.name()
    );
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = load(flags.file()?)?;
    let (min, max) = g.bounding_box();
    let degrees: Vec<usize> = g.node_ids().map(|v| g.out_degree(v)).collect();
    let mean_deg = degrees.iter().sum::<usize>() as f64 / degrees.len().max(1) as f64;
    println!("nodes           : {}", g.num_nodes());
    println!("directed edges  : {}", g.num_edges());
    println!("mean out-degree : {mean_deg:.2}");
    println!(
        "max out-degree  : {}",
        degrees.iter().max().copied().unwrap_or(0)
    );
    println!(
        "extent          : ({:.1}, {:.1}) .. ({:.1}, {:.1})",
        min.x, min.y, max.x, max.y
    );
    println!("adjacency bytes : {}", g.adjacency_bytes());
    let raw = spair::core::netcodec::packet_count(&g, &g.node_ids().collect::<Vec<_>>());
    println!("raw data packets: {raw} (128 B each)");
    Ok(())
}

/// Builds the requested method's broadcast cycle.
fn build_cycle(
    g: &RoadNetwork,
    method: &str,
    regions: usize,
) -> Result<(spair::broadcast::BroadcastCycle, String), String> {
    match method {
        "nr" | "eb" => {
            let part = KdTreePartition::build(g, regions);
            let pre = BorderPrecomputation::run(g, &part);
            if method == "nr" {
                let p = NrServer::new(g, &part, &pre)
                    .build_program()
                    .expect("encode");
                Ok((p.cycle().clone(), format!("NR, {regions} regions")))
            } else {
                let p = EbServer::new(g, &part, &pre)
                    .build_program()
                    .expect("encode");
                Ok((
                    p.cycle().clone(),
                    format!(
                        "EB, {regions} regions, (1,{}) interleaving",
                        p.replication()
                    ),
                ))
            }
        }
        "dj" => {
            let p = spair::baselines::DjServer::new(g).build_program();
            Ok((p.cycle().clone(), "Dijkstra on air".to_string()))
        }
        "af" => {
            let part = KdTreePartition::build(g, regions.min(16));
            let index = spair::baselines::arcflag::ArcFlagIndex::build(g, &part);
            let p = spair::baselines::ArcFlagServer::new(g, &part, &index)
                .build_program()
                .expect("encode");
            Ok((
                p.cycle().clone(),
                format!("ArcFlag, {} regions", regions.min(16)),
            ))
        }
        "ld" => {
            let index = spair::baselines::landmark::LandmarkIndex::build(g, 4);
            let p = spair::baselines::LandmarkServer::new(g, &index).build_program();
            Ok((p.cycle().clone(), "Landmark, 4 anchors".to_string()))
        }
        other => Err(format!("unknown method '{other}' (nr|eb|dj|af|ld)")),
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = load(flags.file()?)?;
    let method = flags.get("method").unwrap_or("nr").to_ascii_lowercase();
    let regions: usize = flags.get_parsed("regions", 32)?;
    let (cycle, label) = build_cycle(&g, &method, regions)?;
    println!("method          : {label}");
    println!(
        "cycle length    : {} packets ({} KB)",
        cycle.len(),
        cycle.len() * 128 / 1024
    );
    println!(
        "cycle duration  : {:.3} s @ 2 Mbps, {:.3} s @ 384 Kbps",
        cycle.duration_secs(2_000_000),
        cycle.duration_secs(384_000),
    );
    println!("segments        : {}", cycle.segments().len());
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = load(flags.file()?)?;
    let from: NodeId = flags.get_parsed("from", NodeId::MAX)?;
    let to: NodeId = flags.get_parsed("to", NodeId::MAX)?;
    if from == NodeId::MAX || to == NodeId::MAX {
        return Err("--from and --to are required".into());
    }
    if from as usize >= g.num_nodes() || to as usize >= g.num_nodes() {
        return Err(format!("node ids must be < {}", g.num_nodes()));
    }
    let method = flags.get("method").unwrap_or("nr").to_ascii_lowercase();
    let regions: usize = flags.get_parsed("regions", 32)?;
    let loss: f64 = flags.get_parsed("loss", 0.0)?;
    let seed: u64 = flags.get_parsed("seed", 1)?;

    // Build program + matching client.
    let part = KdTreePartition::build(&g, regions);
    let pre = BorderPrecomputation::run(&g, &part);
    let (cycle, mut client): (spair::broadcast::BroadcastCycle, Box<dyn AirClient>) =
        match method.as_str() {
            "nr" => {
                let p = NrServer::new(&g, &part, &pre)
                    .build_program()
                    .expect("encode");
                (p.cycle().clone(), Box::new(NrClient::new(p.summary())))
            }
            "eb" => {
                let p = EbServer::new(&g, &part, &pre)
                    .build_program()
                    .expect("encode");
                (p.cycle().clone(), Box::new(EbClient::new(p.summary())))
            }
            "dj" => {
                let p = spair::baselines::DjServer::new(&g).build_program();
                (p.cycle().clone(), Box::new(DjClient::new()))
            }
            "af" => {
                let af_part = KdTreePartition::build(&g, regions.min(16));
                let index = spair::baselines::arcflag::ArcFlagIndex::build(&g, &af_part);
                let p = spair::baselines::ArcFlagServer::new(&g, &af_part, &index)
                    .build_program()
                    .expect("encode");
                (
                    p.cycle().clone(),
                    Box::new(ArcFlagClient::new(regions.min(16))),
                )
            }
            "ld" => {
                let index = spair::baselines::landmark::LandmarkIndex::build(&g, 4);
                let p = spair::baselines::LandmarkServer::new(&g, &index).build_program();
                (p.cycle().clone(), Box::new(LandmarkClient::new()))
            }
            other => return Err(format!("unknown method '{other}'")),
        };

    let offset: usize = flags.get_parsed("offset", cycle.len() / 3)?;
    let loss_model = if loss > 0.0 {
        LossModel::bernoulli(loss, seed)
    } else {
        LossModel::Lossless
    };
    let mut ch = BroadcastChannel::tune_in(&cycle, offset % cycle.len(), loss_model);
    let out = client
        .query(&mut ch, &Query::for_nodes(&g, from, to))
        .map_err(|e| e.to_string())?;

    println!("method          : {}", client.method_name());
    println!("distance        : {}", out.distance);
    println!("path hops       : {}", out.path.len().saturating_sub(1));
    println!("tuning time     : {} packets", out.stats.tuning_packets);
    println!(
        "access latency  : {} packets ({:.3} s @ 384 Kbps)",
        out.stats.latency_packets,
        out.stats.latency_packets as f64 * 128.0 * 8.0 / 384_000.0,
    );
    println!(
        "peak memory     : {:.1} KB",
        out.stats.peak_memory_bytes as f64 / 1024.0
    );
    println!(
        "client CPU      : {:.3} ms",
        out.stats.cpu.as_secs_f64() * 1000.0
    );
    let energy = EnergyModel::WAVELAN_ARM.joules(&out.stats, ChannelRate::MOVING_3G);
    println!("energy          : {energy:.3} J (WaveLAN/ARM @ 384 Kbps)");

    // Sanity: verify against local Dijkstra.
    let want = roadnet::dijkstra_distance(&g, from, to);
    if want != Some(out.distance) {
        return Err(format!("MISMATCH vs local Dijkstra: {want:?}"));
    }
    println!("verified        : matches local Dijkstra");
    Ok(())
}

fn knn(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = load(flags.file()?)?;
    let from: NodeId = flags.get_parsed("from", NodeId::MAX)?;
    if from == NodeId::MAX || from as usize >= g.num_nodes() {
        return Err("--from is required and must be a valid node id".into());
    }
    let k: usize = flags.get_parsed("k", 3)?;
    let every: usize = flags.get_parsed("poi-every", 50)?;
    let regions: usize = flags.get_parsed("regions", 32)?;
    let part = KdTreePartition::build(&g, regions);
    let pre = BorderPrecomputation::run(&g, &part);
    let pois: Vec<NodeId> = g.node_ids().step_by(every.max(1)).collect();
    let program = KnnServer::new(&g, &part, &pre, &pois)
        .build_program()
        .expect("encode");
    let mut client = KnnClient::new(regions);
    let mut ch = BroadcastChannel::lossless(program.cycle());
    let out = client
        .query(&mut ch, from, g.point(from), k)
        .map_err(|e| e.to_string())?;
    println!("{} POIs on the network (every {every}th node)", pois.len());
    println!("{k} nearest to node {from}:");
    for nb in &out.neighbors {
        println!("  node {:>8}  distance {:>10}", nb.node, nb.distance);
    }
    println!(
        "tuning {} of {} cycle packets ({:.0}% pruned)",
        out.stats.tuning_packets,
        program.cycle().len(),
        100.0 * (1.0 - out.stats.tuning_packets as f64 / program.cycle().len() as f64),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Flags;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_long_and_short_flags() {
        let f = flags(&["map.gr", "--method", "nr", "-o", "out.gr"]);
        assert_eq!(f.file().unwrap(), "map.gr");
        assert_eq!(f.get("method"), Some("nr"));
        assert_eq!(f.get("o"), Some("out.gr"));
    }

    #[test]
    fn later_flags_win() {
        let f = flags(&["--seed", "1", "--seed", "2"]);
        assert_eq!(f.get_parsed::<u64>("seed", 0).unwrap(), 2);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let f = flags(&["map.gr"]);
        assert_eq!(f.get_parsed::<usize>("regions", 32).unwrap(), 32);
        assert!(f.require("method").is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let args = vec!["--seed".to_string()];
        assert!(Flags::parse(&args).is_err());
    }

    #[test]
    fn bad_value_is_an_error() {
        let f = flags(&["--scale", "abc"]);
        assert!(f.get_parsed::<f64>("scale", 1.0).is_err());
    }
}
