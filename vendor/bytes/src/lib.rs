//! Minimal offline subset of the `bytes` crate: an immutable, cheaply
//! clonable byte buffer. Backed by `Arc<[u8]>`, so clones are O(1) —
//! the property the broadcast cycle relies on when the same payload is
//! referenced from many packets.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer borrowing nothing: copies `data` into a fresh allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Buffer over a static slice (copied; upstream borrows, but the
    /// observable behavior is identical for an immutable buffer).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
    }
}
