//! Value-generation strategies: ranges, tuples, `Just`, `any`, `prop_map`,
//! and `prop_oneof!` support.

use crate::test_runner::Gen;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from a [`Gen`].
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, g: &mut Gen) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// One boxed generator inside a [`OneOf`].
pub type BoxedGenerate<T> = Box<dyn Fn(&mut Gen) -> T>;

/// Uniform choice among boxed generators (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedGenerate<T>>,
}

impl<T> OneOf<T> {
    /// Builds from at least one option.
    pub fn new(options: Vec<BoxedGenerate<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, g: &mut Gen) -> T {
        let i = g.below(self.options.len() as u64) as usize;
        (self.options[i])(g)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + g.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + g.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * g.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> $t {
                g.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> bool {
        g.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(g: &mut Gen) -> f64 {
        // Finite values spanning many magnitudes and both signs; avoids
        // NaN/inf, matching how the workspace's properties use floats
        // (coordinates, rates).
        let mag = g.unit_f64() * 2e6 - 1e6;
        mag * g.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(g: &mut Gen) -> f32 {
        f64::arbitrary(g) as f32
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

/// Length bounds for collection strategies, mirroring upstream's
/// `SizeRange` so bare `1..12` literals infer `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Vec strategy with a length drawn from a [`SizeRange`]
/// (`prop::collection::vec`).
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
        let n = self.len.lo + g.below((self.len.hi_inclusive - self.len.lo + 1) as u64) as usize;
        (0..n).map(|_| self.elem.generate(g)).collect()
    }
}
