//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{SizeRange, Strategy, VecStrategy};

/// Vec of `elem` values with length drawn from `len` (a usize range such
/// as `0..10` or `1..=8`, or an exact count).
pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}
