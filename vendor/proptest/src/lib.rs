//! Deterministic subset of the `proptest` API.
//!
//! Each property runs `ProptestConfig::cases` times with inputs drawn
//! from strategies seeded by the test's module path and case index, so
//! every run of the suite sees the same inputs and failures reproduce
//! exactly. No shrinking: the failing case's number is reported instead.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, Just, Map, OneOf, SizeRange, Strategy, VecStrategy};
pub use test_runner::{Gen, TestCaseError};

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut gen = $crate::Gen::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut gen);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) via an early `Err` return.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skips the case when its inputs don't satisfy a precondition. The
/// upstream runner rejects and redraws; here the case simply passes.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion `left == right` failed\n  left: {:?}\n right: {:?}",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion `left != right` failed\n  both: {:?}",
                        l
                    )));
                }
            }
        }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |g: &mut $crate::Gen| $crate::Strategy::generate(&s, g))
                    as ::std::boxed::Box<dyn Fn(&mut $crate::Gen) -> _>
            }),+
        ])
    };
}
