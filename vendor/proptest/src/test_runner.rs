//! Deterministic case generation and failure reporting.

use std::fmt;

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic SplitMix64 input generator.
///
/// Seeded from the property's fully qualified name and the case index,
/// so reruns regenerate identical inputs.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Generator for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
