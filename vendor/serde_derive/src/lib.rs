//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives the serde traits on a few types but never
//! serializes through serde (persistence goes through the DIMACS-style
//! text format in `roadnet::io`), so offline builds only need the derive
//! invocations — and their `#[serde(...)]` helper attributes — to be
//! accepted. Each derive expands to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attrs; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attrs; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
