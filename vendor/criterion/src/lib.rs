//! Minimal subset of the `criterion` micro-benchmark API.
//!
//! Times each routine over `sample_size` samples and prints
//! min / mean / max per iteration. No statistical analysis, plots or
//! baselines — enough to watch for order-of-magnitude regressions in the
//! building blocks, offline. When invoked by `cargo test` (bench targets
//! default to `test = true`), the `--test` flag makes each benchmark run
//! a single smoke iteration instead of a timed sample.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iterations: if self.test_mode { 1 } else { self.sample_size },
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok (smoke)");
        } else if let (Some(&min), Some(&max)) = (b.samples.iter().min(), b.samples.iter().max()) {
            let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
            println!(
                "bench {name:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
                min,
                mean,
                max,
                b.samples.len()
            );
        }
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group. Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point. Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
