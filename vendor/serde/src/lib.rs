//! Serde marker traits for offline builds.
//!
//! Only the trait names and the derive macros are provided; nothing in
//! this workspace serializes through serde (see `vendor/README.md`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
