//! Minimal offline subset of the `rand` 0.8 API.
//!
//! Implements exactly what this workspace uses: `rngs::StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over numeric ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! SplitMix64 — deterministic and fast, though not the upstream ChaCha
//! stream; all seeded data in this repo is self-consistent.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Pre-advance once so seed 0 does not start at state 0.
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait (`shuffle`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
